//! The binary wire layer: little-endian, length-prefixed, total.
//!
//! Decoding untrusted bytes must never panic or over-allocate: every
//! read is bounds-checked, and every element count is validated
//! against the number of bytes actually remaining (each element of a
//! sequence occupies at least one byte, so `count > remaining` is
//! proof of corruption before any allocation happens).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Why a decode failed. Carried verbatim into store `rejects`
/// accounting; never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a fixed-size read.
    Truncated {
        /// Bytes the read needed.
        need: usize,
        /// Bytes that were left.
        have: usize,
    },
    /// An enum tag byte had no corresponding variant.
    BadTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A length prefix exceeded the remaining input.
    BadLen {
        /// The sequence being decoded.
        what: &'static str,
        /// The claimed element count.
        len: u64,
    },
    /// A string's bytes were not valid UTF-8.
    BadUtf8,
    /// Input remained after a complete top-level decode.
    Trailing {
        /// Unconsumed byte count.
        extra: usize,
    },
    /// A structural invariant failed (context in the message).
    Invalid {
        /// What was violated.
        what: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated input: need {need} bytes, have {have}")
            }
            WireError::BadTag { what, tag } => write!(f, "bad tag {tag} for {what}"),
            WireError::BadLen { what, len } => write!(f, "implausible length {len} for {what}"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in string"),
            WireError::Trailing { extra } => write!(f, "{extra} trailing bytes after decode"),
            WireError::Invalid { what } => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// An append-only byte sink for encoding.
#[derive(Default, Debug)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (the format is 64-bit everywhere,
    /// independent of the host).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a length-prefixed byte string.
    pub fn blob(&mut self, b: &[u8]) {
        self.usize(b.len());
        self.bytes(b);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.blob(s.as_bytes());
    }
}

/// A bounds-checked cursor over encoded bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless every byte has been consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::Trailing {
                extra: self.remaining(),
            })
        }
    }

    /// Consumes exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, WireError> {
        Ok(self.u64()? as i64)
    }

    /// Reads a `u64`-encoded `usize`, rejecting values beyond the
    /// host's address range.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| WireError::BadLen {
            what: "usize",
            len: v,
        })
    }

    /// Reads an element count for a sequence whose elements each
    /// occupy at least `min_elem_bytes` bytes, rejecting counts the
    /// remaining input cannot possibly satisfy (this is the
    /// allocation-bomb guard: corrupt counts fail *before* any
    /// `Vec::with_capacity`).
    pub fn seq_len(
        &mut self,
        what: &'static str,
        min_elem_bytes: usize,
    ) -> Result<usize, WireError> {
        let v = self.u64()?;
        let per = min_elem_bytes.max(1);
        let plausible = (self.remaining() / per) as u64;
        if v > plausible {
            return Err(WireError::BadLen { what, len: v });
        }
        Ok(v as usize)
    }

    /// Reads a length-prefixed byte string.
    pub fn blob(&mut self, what: &'static str) -> Result<&'a [u8], WireError> {
        let n = self.seq_len(what, 1)?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, what: &'static str) -> Result<String, WireError> {
        let b = self.blob(what)?;
        String::from_utf8(b.to_vec()).map_err(|_| WireError::BadUtf8)
    }
}

/// A type with an explicit binary encoding. Implementations live next
/// to the types they encode (here for `funtal-syntax`, in `funtal` for
/// the bytecode IR, in `funtal-compile` for MiniF artifacts).
pub trait Wire: Sized {
    /// Appends `self` to the writer.
    fn encode(&self, w: &mut Writer);
    /// Reads one value; total (never panics on corrupt input).
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

/// Encodes a value to a standalone byte vector.
pub fn encode_to_vec<T: Wire>(v: &T) -> Vec<u8> {
    let mut w = Writer::new();
    v.encode(&mut w);
    w.into_vec()
}

/// Decodes a value from a standalone byte slice, requiring the slice
/// to be fully consumed.
pub fn decode_from_slice<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = Reader::new(bytes);
    let v = T::decode(&mut r)?;
    r.finish()?;
    Ok(v)
}

impl Wire for u8 {
    fn encode(&self, w: &mut Writer) {
        w.u8(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u8()
    }
}

impl Wire for u32 {
    fn encode(&self, w: &mut Writer) {
        w.u32(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u32()
    }
}

impl Wire for u64 {
    fn encode(&self, w: &mut Writer) {
        w.u64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.u64()
    }
}

impl Wire for i64 {
    fn encode(&self, w: &mut Writer) {
        w.i64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.i64()
    }
}

impl Wire for usize {
    fn encode(&self, w: &mut Writer) {
        w.usize(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.usize()
    }
}

impl Wire for bool {
    fn encode(&self, w: &mut Writer) {
        w.u8(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag { what: "bool", tag }),
        }
    }
}

impl Wire for String {
    fn encode(&self, w: &mut Writer) {
        w.str(self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.str("String")
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "Option",
                tag,
            }),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.len());
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len("Vec", 1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Wire> Wire for Box<T> {
    fn encode(&self, w: &mut Writer) {
        (**self).encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Box::new(T::decode(r)?))
    }
}

impl<T: Wire> Wire for Arc<T> {
    fn encode(&self, w: &mut Writer) {
        (**self).encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Arc::new(T::decode(r)?))
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<K: Wire + Ord, V: Wire> Wire for BTreeMap<K, V> {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.len());
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let n = r.seq_len("BTreeMap", 2)?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            if out.insert(k, v).is_some() {
                return Err(WireError::Invalid {
                    what: "duplicate BTreeMap key",
                });
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode_to_vec(&v);
        let back: T = decode_from_slice(&bytes).expect("round trip");
        assert_eq!(v, back);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip(i64::MIN);
        round_trip(i64::MAX);
        round_trip(usize::MAX >> 1);
        round_trip(true);
        round_trip(false);
        round_trip(String::from("héllo ⟨world⟩"));
        round_trip(Option::<u64>::None);
        round_trip(Some(42u64));
        round_trip(vec![1u32, 2, 3]);
        round_trip(Box::new(7i64));
        round_trip(Arc::new(String::from("shared")));
        round_trip((1u8, 2u32, String::from("t")));
        round_trip(BTreeMap::from([
            (String::from("a"), 1u64),
            (String::from("b"), 2u64),
        ]));
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = encode_to_vec(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            let r: Result<Vec<u64>, _> = decode_from_slice(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn implausible_lengths_reject_before_allocating() {
        // A Vec claiming u64::MAX elements with 0 bytes of payload.
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let r: Result<Vec<u64>, _> = decode_from_slice(&w.into_vec());
        assert!(matches!(r, Err(WireError::BadLen { .. })));
    }

    #[test]
    fn trailing_bytes_reject() {
        let mut bytes = encode_to_vec(&42u64);
        bytes.push(0);
        let r: Result<u64, _> = decode_from_slice(&bytes);
        assert!(matches!(r, Err(WireError::Trailing { extra: 1 })));
    }

    #[test]
    fn non_canonical_bool_rejects() {
        let r: Result<bool, _> = decode_from_slice(&[2]);
        assert!(matches!(r, Err(WireError::BadTag { .. })));
    }

    #[test]
    fn duplicate_map_keys_reject() {
        let mut w = Writer::new();
        w.u64(2);
        w.str("k");
        w.u64(1);
        w.str("k");
        w.u64(2);
        let r: Result<BTreeMap<String, u64>, _> = decode_from_slice(&w.into_vec());
        assert!(matches!(r, Err(WireError::Invalid { .. })));
    }
}
