//! Persistent content-addressed artifact store.
//!
//! The in-process [`ArtifactCache`] (in `funtal-driver`) keys parse,
//! typecheck, lower, and compile artifacts on full content with stable
//! FNV-1a digests as the reported addresses. This crate adds the tier
//! below it: a disk-backed store so a *second process* (a `serve`
//! restart, the next CI job) starts warm.
//!
//! Three layers:
//!
//! - [`wire`] — a hand-rolled, versioned binary encoding (`Writer` /
//!   `Reader` / the [`Wire`] trait). No serde in the offline vendor
//!   set, so every codec is explicit; decoding is total (never
//!   panics) and every length is bounds-checked before allocation.
//! - [`codec`] — [`Wire`] implementations for the `funtal-syntax`
//!   vocabulary (terms, types, spans). Codecs for crate-private types
//!   (`BcModule`) and downstream artifact structs live in their owning
//!   crates against the same trait.
//! - [`disk`] — [`DiskStore`]: atomic temp-file + rename writes, a
//!   container header that stores the *full key* (so a 64-bit digest
//!   collision can never serve a wrong artifact), checksums, per-stage
//!   hit/miss/reject counters, and size-capped mtime-LRU eviction.
//!
//! [`ArtifactCache`]: https://docs.rs/funtal-driver

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod disk;
pub mod wire;

pub use disk::{
    parse_container, ContainerError, DiskStore, EntryInfo, GcReport, Stage, StageDiskStats,
    StoreStats, FORMAT_VERSION,
};
pub use wire::{decode_from_slice, encode_to_vec, Reader, Wire, WireError, Writer};
