//! [`Wire`] codecs for the `funtal-syntax` vocabulary.
//!
//! Layout conventions: enums are a one-byte tag (declaration order)
//! followed by the variant's fields in declaration order; structs are
//! their fields in declaration order; maps/sequences are the generic
//! containers from [`crate::wire`]. Tags are part of the persisted
//! format — renumbering is a format break and must bump
//! [`crate::disk::FORMAT_VERSION`].

use funtal_syntax::{
    ArithOp, CodeBlock, CodeTy, FExpr, FTy, HeapFrag, HeapTy, HeapVal, Inst, Instr, InstrSeq, Kind,
    Label, Lam, Mutability, Reg, RegFileTy, RetMarker, SmallVal, Span, SpanTable, StackTail,
    StackTy, TComp, TTy, Terminator, TyVar, TyVarDecl, VarName, WordVal,
};

use crate::wire::{Reader, Wire, WireError, Writer};

fn bad_tag<T>(what: &'static str, tag: u8) -> Result<T, WireError> {
    Err(WireError::BadTag { what, tag })
}

impl Wire for ArithOp {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            ArithOp::Add => 0,
            ArithOp::Sub => 1,
            ArithOp::Mul => 2,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(ArithOp::Add),
            1 => Ok(ArithOp::Sub),
            2 => Ok(ArithOp::Mul),
            t => bad_tag("ArithOp", t),
        }
    }
}

impl Wire for Reg {
    fn encode(&self, w: &mut Writer) {
        let idx = Reg::ALL
            .iter()
            .position(|r| r == self)
            .expect("Reg::ALL is exhaustive");
        w.u8(idx as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let tag = r.u8()?;
        Reg::ALL
            .get(tag as usize)
            .copied()
            .ok_or(WireError::BadTag { what: "Reg", tag })
    }
}

macro_rules! name_wire {
    ($ty:ident) => {
        impl Wire for $ty {
            fn encode(&self, w: &mut Writer) {
                w.str(self.as_str());
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
                Ok($ty::new(r.str(stringify!($ty))?))
            }
        }
    };
}

name_wire!(Label);
name_wire!(TyVar);
name_wire!(VarName);

impl Wire for Span {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.line);
        w.u32(self.col);
        w.u32(self.end_line);
        w.u32(self.end_col);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Span {
            line: r.u32()?,
            col: r.u32()?,
            end_line: r.u32()?,
            end_col: r.u32()?,
        })
    }
}

impl Wire for SpanTable {
    fn encode(&self, w: &mut Writer) {
        self.root.encode(w);
        self.labels.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SpanTable {
            root: Span::decode(r)?,
            labels: Wire::decode(r)?,
        })
    }
}

impl Wire for Kind {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            Kind::Ty => 0,
            Kind::Stack => 1,
            Kind::Ret => 2,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Kind::Ty),
            1 => Ok(Kind::Stack),
            2 => Ok(Kind::Ret),
            t => bad_tag("Kind", t),
        }
    }
}

impl Wire for TyVarDecl {
    fn encode(&self, w: &mut Writer) {
        self.var.encode(w);
        self.kind.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TyVarDecl {
            var: TyVar::decode(r)?,
            kind: Kind::decode(r)?,
        })
    }
}

impl Wire for Mutability {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            Mutability::Ref => 0,
            Mutability::Boxed => 1,
        });
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Mutability::Ref),
            1 => Ok(Mutability::Boxed),
            t => bad_tag("Mutability", t),
        }
    }
}

impl Wire for TTy {
    fn encode(&self, w: &mut Writer) {
        match self {
            TTy::Var(v) => {
                w.u8(0);
                v.encode(w);
            }
            TTy::Unit => w.u8(1),
            TTy::Int => w.u8(2),
            TTy::Exists(v, t) => {
                w.u8(3);
                v.encode(w);
                t.encode(w);
            }
            TTy::Rec(v, t) => {
                w.u8(4);
                v.encode(w);
                t.encode(w);
            }
            TTy::Ref(ts) => {
                w.u8(5);
                ts.encode(w);
            }
            TTy::Boxed(h) => {
                w.u8(6);
                h.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(TTy::Var(TyVar::decode(r)?)),
            1 => Ok(TTy::Unit),
            2 => Ok(TTy::Int),
            3 => Ok(TTy::Exists(TyVar::decode(r)?, Wire::decode(r)?)),
            4 => Ok(TTy::Rec(TyVar::decode(r)?, Wire::decode(r)?)),
            5 => Ok(TTy::Ref(Wire::decode(r)?)),
            6 => Ok(TTy::Boxed(Wire::decode(r)?)),
            t => bad_tag("TTy", t),
        }
    }
}

impl Wire for HeapTy {
    fn encode(&self, w: &mut Writer) {
        match self {
            HeapTy::Code(c) => {
                w.u8(0);
                c.encode(w);
            }
            HeapTy::Tuple(ts) => {
                w.u8(1);
                ts.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(HeapTy::Code(CodeTy::decode(r)?)),
            1 => Ok(HeapTy::Tuple(Wire::decode(r)?)),
            t => bad_tag("HeapTy", t),
        }
    }
}

impl Wire for CodeTy {
    fn encode(&self, w: &mut Writer) {
        self.delta.encode(w);
        self.chi.encode(w);
        self.sigma.encode(w);
        self.q.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CodeTy {
            delta: Wire::decode(r)?,
            chi: RegFileTy::decode(r)?,
            sigma: StackTy::decode(r)?,
            q: RetMarker::decode(r)?,
        })
    }
}

impl Wire for RegFileTy {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(RegFileTy(Wire::decode(r)?))
    }
}

impl Wire for StackTail {
    fn encode(&self, w: &mut Writer) {
        match self {
            StackTail::Empty => w.u8(0),
            StackTail::Var(v) => {
                w.u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(StackTail::Empty),
            1 => Ok(StackTail::Var(TyVar::decode(r)?)),
            t => bad_tag("StackTail", t),
        }
    }
}

impl Wire for StackTy {
    fn encode(&self, w: &mut Writer) {
        self.prefix.encode(w);
        self.tail.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(StackTy {
            prefix: Wire::decode(r)?,
            tail: StackTail::decode(r)?,
        })
    }
}

impl Wire for RetMarker {
    fn encode(&self, w: &mut Writer) {
        match self {
            RetMarker::Reg(reg) => {
                w.u8(0);
                reg.encode(w);
            }
            RetMarker::Stack(i) => {
                w.u8(1);
                i.encode(w);
            }
            RetMarker::Var(v) => {
                w.u8(2);
                v.encode(w);
            }
            RetMarker::End { ty, sigma } => {
                w.u8(3);
                ty.encode(w);
                sigma.encode(w);
            }
            RetMarker::Out => w.u8(4),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(RetMarker::Reg(Reg::decode(r)?)),
            1 => Ok(RetMarker::Stack(usize::decode(r)?)),
            2 => Ok(RetMarker::Var(TyVar::decode(r)?)),
            3 => Ok(RetMarker::End {
                ty: Wire::decode(r)?,
                sigma: StackTy::decode(r)?,
            }),
            4 => Ok(RetMarker::Out),
            t => bad_tag("RetMarker", t),
        }
    }
}

impl Wire for Inst {
    fn encode(&self, w: &mut Writer) {
        match self {
            Inst::Ty(t) => {
                w.u8(0);
                t.encode(w);
            }
            Inst::Stack(s) => {
                w.u8(1);
                s.encode(w);
            }
            Inst::Ret(q) => {
                w.u8(2);
                q.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Inst::Ty(TTy::decode(r)?)),
            1 => Ok(Inst::Stack(StackTy::decode(r)?)),
            2 => Ok(Inst::Ret(RetMarker::decode(r)?)),
            t => bad_tag("Inst", t),
        }
    }
}

impl Wire for FTy {
    fn encode(&self, w: &mut Writer) {
        match self {
            FTy::Var(v) => {
                w.u8(0);
                v.encode(w);
            }
            FTy::Unit => w.u8(1),
            FTy::Int => w.u8(2),
            FTy::Arrow {
                params,
                phi_in,
                phi_out,
                ret,
            } => {
                w.u8(3);
                params.encode(w);
                phi_in.encode(w);
                phi_out.encode(w);
                ret.encode(w);
            }
            FTy::Rec(v, t) => {
                w.u8(4);
                v.encode(w);
                t.encode(w);
            }
            FTy::Tuple(ts) => {
                w.u8(5);
                ts.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(FTy::Var(TyVar::decode(r)?)),
            1 => Ok(FTy::Unit),
            2 => Ok(FTy::Int),
            3 => Ok(FTy::Arrow {
                params: Wire::decode(r)?,
                phi_in: Wire::decode(r)?,
                phi_out: Wire::decode(r)?,
                ret: Wire::decode(r)?,
            }),
            4 => Ok(FTy::Rec(TyVar::decode(r)?, Wire::decode(r)?)),
            5 => Ok(FTy::Tuple(Wire::decode(r)?)),
            t => bad_tag("FTy", t),
        }
    }
}

impl Wire for WordVal {
    fn encode(&self, w: &mut Writer) {
        match self {
            WordVal::Unit => w.u8(0),
            WordVal::Int(n) => {
                w.u8(1);
                w.i64(*n);
            }
            WordVal::Loc(l) => {
                w.u8(2);
                l.encode(w);
            }
            WordVal::Pack { hidden, body, ann } => {
                w.u8(3);
                hidden.encode(w);
                body.encode(w);
                ann.encode(w);
            }
            WordVal::Fold { ann, body } => {
                w.u8(4);
                ann.encode(w);
                body.encode(w);
            }
            WordVal::Inst { body, args } => {
                w.u8(5);
                body.encode(w);
                args.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(WordVal::Unit),
            1 => Ok(WordVal::Int(r.i64()?)),
            2 => Ok(WordVal::Loc(Label::decode(r)?)),
            3 => Ok(WordVal::Pack {
                hidden: TTy::decode(r)?,
                body: Wire::decode(r)?,
                ann: TTy::decode(r)?,
            }),
            4 => Ok(WordVal::Fold {
                ann: TTy::decode(r)?,
                body: Wire::decode(r)?,
            }),
            5 => Ok(WordVal::Inst {
                body: Wire::decode(r)?,
                args: Wire::decode(r)?,
            }),
            t => bad_tag("WordVal", t),
        }
    }
}

impl Wire for SmallVal {
    fn encode(&self, w: &mut Writer) {
        match self {
            SmallVal::Reg(reg) => {
                w.u8(0);
                reg.encode(w);
            }
            SmallVal::Word(v) => {
                w.u8(1);
                v.encode(w);
            }
            SmallVal::Pack { hidden, body, ann } => {
                w.u8(2);
                hidden.encode(w);
                body.encode(w);
                ann.encode(w);
            }
            SmallVal::Fold { ann, body } => {
                w.u8(3);
                ann.encode(w);
                body.encode(w);
            }
            SmallVal::Inst { body, args } => {
                w.u8(4);
                body.encode(w);
                args.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(SmallVal::Reg(Reg::decode(r)?)),
            1 => Ok(SmallVal::Word(WordVal::decode(r)?)),
            2 => Ok(SmallVal::Pack {
                hidden: TTy::decode(r)?,
                body: Wire::decode(r)?,
                ann: TTy::decode(r)?,
            }),
            3 => Ok(SmallVal::Fold {
                ann: TTy::decode(r)?,
                body: Wire::decode(r)?,
            }),
            4 => Ok(SmallVal::Inst {
                body: Wire::decode(r)?,
                args: Wire::decode(r)?,
            }),
            t => bad_tag("SmallVal", t),
        }
    }
}

impl Wire for Instr {
    fn encode(&self, w: &mut Writer) {
        match self {
            Instr::Arith { op, rd, rs, src } => {
                w.u8(0);
                op.encode(w);
                rd.encode(w);
                rs.encode(w);
                src.encode(w);
            }
            Instr::Bnz { r, target } => {
                w.u8(1);
                r.encode(w);
                target.encode(w);
            }
            Instr::Ld { rd, rs, idx } => {
                w.u8(2);
                rd.encode(w);
                rs.encode(w);
                idx.encode(w);
            }
            Instr::St { rd, idx, rs } => {
                w.u8(3);
                rd.encode(w);
                idx.encode(w);
                rs.encode(w);
            }
            Instr::Ralloc { rd, n } => {
                w.u8(4);
                rd.encode(w);
                n.encode(w);
            }
            Instr::Balloc { rd, n } => {
                w.u8(5);
                rd.encode(w);
                n.encode(w);
            }
            Instr::Mv { rd, src } => {
                w.u8(6);
                rd.encode(w);
                src.encode(w);
            }
            Instr::Salloc(n) => {
                w.u8(7);
                n.encode(w);
            }
            Instr::Sfree(n) => {
                w.u8(8);
                n.encode(w);
            }
            Instr::Sld { rd, idx } => {
                w.u8(9);
                rd.encode(w);
                idx.encode(w);
            }
            Instr::Sst { idx, rs } => {
                w.u8(10);
                idx.encode(w);
                rs.encode(w);
            }
            Instr::Unpack { tv, rd, src } => {
                w.u8(11);
                tv.encode(w);
                rd.encode(w);
                src.encode(w);
            }
            Instr::Unfold { rd, src } => {
                w.u8(12);
                rd.encode(w);
                src.encode(w);
            }
            Instr::Protect { phi, zeta } => {
                w.u8(13);
                phi.encode(w);
                zeta.encode(w);
            }
            Instr::Import {
                rd,
                zeta,
                protected,
                ty,
                body,
            } => {
                w.u8(14);
                rd.encode(w);
                zeta.encode(w);
                protected.encode(w);
                ty.encode(w);
                body.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Instr::Arith {
                op: ArithOp::decode(r)?,
                rd: Reg::decode(r)?,
                rs: Reg::decode(r)?,
                src: SmallVal::decode(r)?,
            }),
            1 => Ok(Instr::Bnz {
                r: Reg::decode(r)?,
                target: SmallVal::decode(r)?,
            }),
            2 => Ok(Instr::Ld {
                rd: Reg::decode(r)?,
                rs: Reg::decode(r)?,
                idx: usize::decode(r)?,
            }),
            3 => Ok(Instr::St {
                rd: Reg::decode(r)?,
                idx: usize::decode(r)?,
                rs: Reg::decode(r)?,
            }),
            4 => Ok(Instr::Ralloc {
                rd: Reg::decode(r)?,
                n: usize::decode(r)?,
            }),
            5 => Ok(Instr::Balloc {
                rd: Reg::decode(r)?,
                n: usize::decode(r)?,
            }),
            6 => Ok(Instr::Mv {
                rd: Reg::decode(r)?,
                src: SmallVal::decode(r)?,
            }),
            7 => Ok(Instr::Salloc(usize::decode(r)?)),
            8 => Ok(Instr::Sfree(usize::decode(r)?)),
            9 => Ok(Instr::Sld {
                rd: Reg::decode(r)?,
                idx: usize::decode(r)?,
            }),
            10 => Ok(Instr::Sst {
                idx: usize::decode(r)?,
                rs: Reg::decode(r)?,
            }),
            11 => Ok(Instr::Unpack {
                tv: TyVar::decode(r)?,
                rd: Reg::decode(r)?,
                src: SmallVal::decode(r)?,
            }),
            12 => Ok(Instr::Unfold {
                rd: Reg::decode(r)?,
                src: SmallVal::decode(r)?,
            }),
            13 => Ok(Instr::Protect {
                phi: Wire::decode(r)?,
                zeta: TyVar::decode(r)?,
            }),
            14 => Ok(Instr::Import {
                rd: Reg::decode(r)?,
                zeta: TyVar::decode(r)?,
                protected: StackTy::decode(r)?,
                ty: FTy::decode(r)?,
                body: Wire::decode(r)?,
            }),
            t => bad_tag("Instr", t),
        }
    }
}

impl Wire for Terminator {
    fn encode(&self, w: &mut Writer) {
        match self {
            Terminator::Jmp(v) => {
                w.u8(0);
                v.encode(w);
            }
            Terminator::Call { target, sigma, q } => {
                w.u8(1);
                target.encode(w);
                sigma.encode(w);
                q.encode(w);
            }
            Terminator::Ret { target, val } => {
                w.u8(2);
                target.encode(w);
                val.encode(w);
            }
            Terminator::Halt { ty, sigma, val } => {
                w.u8(3);
                ty.encode(w);
                sigma.encode(w);
                val.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(Terminator::Jmp(SmallVal::decode(r)?)),
            1 => Ok(Terminator::Call {
                target: SmallVal::decode(r)?,
                sigma: StackTy::decode(r)?,
                q: RetMarker::decode(r)?,
            }),
            2 => Ok(Terminator::Ret {
                target: Reg::decode(r)?,
                val: Reg::decode(r)?,
            }),
            3 => Ok(Terminator::Halt {
                ty: TTy::decode(r)?,
                sigma: StackTy::decode(r)?,
                val: Reg::decode(r)?,
            }),
            t => bad_tag("Terminator", t),
        }
    }
}

impl Wire for InstrSeq {
    fn encode(&self, w: &mut Writer) {
        self.instrs.encode(w);
        self.term.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(InstrSeq {
            instrs: Wire::decode(r)?,
            term: Terminator::decode(r)?,
        })
    }
}

impl Wire for CodeBlock {
    fn encode(&self, w: &mut Writer) {
        self.delta.encode(w);
        self.chi.encode(w);
        self.sigma.encode(w);
        self.q.encode(w);
        self.body.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(CodeBlock {
            delta: Wire::decode(r)?,
            chi: RegFileTy::decode(r)?,
            sigma: StackTy::decode(r)?,
            q: RetMarker::decode(r)?,
            body: InstrSeq::decode(r)?,
        })
    }
}

impl Wire for HeapVal {
    fn encode(&self, w: &mut Writer) {
        match self {
            HeapVal::Code(c) => {
                w.u8(0);
                c.encode(w);
            }
            HeapVal::Tuple { mutability, fields } => {
                w.u8(1);
                mutability.encode(w);
                fields.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(HeapVal::Code(CodeBlock::decode(r)?)),
            1 => Ok(HeapVal::Tuple {
                mutability: Mutability::decode(r)?,
                fields: Wire::decode(r)?,
            }),
            t => bad_tag("HeapVal", t),
        }
    }
}

impl Wire for HeapFrag {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(HeapFrag(Wire::decode(r)?))
    }
}

impl Wire for TComp {
    fn encode(&self, w: &mut Writer) {
        self.seq.encode(w);
        self.heap.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(TComp {
            seq: InstrSeq::decode(r)?,
            heap: HeapFrag::decode(r)?,
        })
    }
}

impl Wire for Lam {
    fn encode(&self, w: &mut Writer) {
        self.params.encode(w);
        self.zeta.encode(w);
        self.phi_in.encode(w);
        self.phi_out.encode(w);
        self.body.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Lam {
            params: Wire::decode(r)?,
            zeta: TyVar::decode(r)?,
            phi_in: Wire::decode(r)?,
            phi_out: Wire::decode(r)?,
            body: FExpr::decode(r)?,
        })
    }
}

impl Wire for FExpr {
    fn encode(&self, w: &mut Writer) {
        match self {
            FExpr::Var(v) => {
                w.u8(0);
                v.encode(w);
            }
            FExpr::Unit => w.u8(1),
            FExpr::Int(n) => {
                w.u8(2);
                w.i64(*n);
            }
            FExpr::Binop { op, lhs, rhs } => {
                w.u8(3);
                op.encode(w);
                lhs.encode(w);
                rhs.encode(w);
            }
            FExpr::If0 {
                cond,
                then_branch,
                else_branch,
            } => {
                w.u8(4);
                cond.encode(w);
                then_branch.encode(w);
                else_branch.encode(w);
            }
            FExpr::Lam(l) => {
                w.u8(5);
                l.encode(w);
            }
            FExpr::App { func, args } => {
                w.u8(6);
                func.encode(w);
                args.encode(w);
            }
            FExpr::Fold { ann, body } => {
                w.u8(7);
                ann.encode(w);
                body.encode(w);
            }
            FExpr::Unfold(e) => {
                w.u8(8);
                e.encode(w);
            }
            FExpr::Tuple(es) => {
                w.u8(9);
                es.encode(w);
            }
            FExpr::Proj { idx, tuple } => {
                w.u8(10);
                idx.encode(w);
                tuple.encode(w);
            }
            FExpr::Boundary {
                ty,
                sigma_out,
                comp,
            } => {
                w.u8(11);
                ty.encode(w);
                sigma_out.encode(w);
                comp.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(FExpr::Var(VarName::decode(r)?)),
            1 => Ok(FExpr::Unit),
            2 => Ok(FExpr::Int(r.i64()?)),
            3 => Ok(FExpr::Binop {
                op: ArithOp::decode(r)?,
                lhs: Wire::decode(r)?,
                rhs: Wire::decode(r)?,
            }),
            4 => Ok(FExpr::If0 {
                cond: Wire::decode(r)?,
                then_branch: Wire::decode(r)?,
                else_branch: Wire::decode(r)?,
            }),
            5 => Ok(FExpr::Lam(Wire::decode(r)?)),
            6 => Ok(FExpr::App {
                func: Wire::decode(r)?,
                args: Wire::decode(r)?,
            }),
            7 => Ok(FExpr::Fold {
                ann: FTy::decode(r)?,
                body: Wire::decode(r)?,
            }),
            8 => Ok(FExpr::Unfold(Wire::decode(r)?)),
            9 => Ok(FExpr::Tuple(Wire::decode(r)?)),
            10 => Ok(FExpr::Proj {
                idx: usize::decode(r)?,
                tuple: Wire::decode(r)?,
            }),
            11 => Ok(FExpr::Boundary {
                ty: FTy::decode(r)?,
                sigma_out: Wire::decode(r)?,
                comp: Wire::decode(r)?,
            }),
            t => bad_tag("FExpr", t),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::wire::{decode_from_slice, encode_to_vec};
    use funtal_syntax::*;

    fn round_trip<T: crate::wire::Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode_to_vec(&v);
        let back: T = decode_from_slice(&bytes).expect("round trip");
        assert_eq!(v, back);
    }

    #[test]
    fn types_round_trip() {
        round_trip(FTy::Arrow {
            params: vec![FTy::Int, FTy::Unit],
            phi_in: vec![TTy::Int],
            phi_out: vec![],
            ret: Box::new(FTy::Rec(
                TyVar::new("a"),
                Box::new(FTy::Var(TyVar::new("a"))),
            )),
        });
        round_trip(TTy::code(
            vec![
                TyVarDecl::ty("a"),
                TyVarDecl::stack("z"),
                TyVarDecl::ret("e"),
            ],
            RegFileTy(std::collections::BTreeMap::from([(Reg::R1, TTy::Int)])),
            StackTy::with_prefix(vec![TTy::Unit], StackTail::Var(TyVar::new("z"))),
            RetMarker::end(TTy::Int, StackTy::nil()),
        ));
    }

    #[test]
    fn terms_round_trip() {
        round_trip(FExpr::binop(
            ArithOp::Mul,
            FExpr::Int(6),
            FExpr::app(
                FExpr::Lam(Box::new(Lam {
                    params: vec![(VarName::new("x"), FTy::Int)],
                    zeta: TyVar::new("z"),
                    phi_in: vec![],
                    phi_out: vec![],
                    body: FExpr::Var(VarName::new("x")),
                })),
                vec![FExpr::Int(7)],
            ),
        ));
        round_trip(WordVal::Pack {
            hidden: TTy::Int,
            body: Box::new(WordVal::Loc(Label::new("l"))),
            ann: TTy::Exists(TyVar::new("a"), Box::new(TTy::Var(TyVar::new("a")))),
        });
        round_trip(SmallVal::loc("entry").instantiate(vec![
            Inst::Ty(TTy::Int),
            Inst::Stack(StackTy::nil()),
            Inst::Ret(RetMarker::Out),
        ]));
    }

    #[test]
    fn components_round_trip() {
        let seq = InstrSeq::new(
            vec![
                Instr::Mv {
                    rd: Reg::R1,
                    src: SmallVal::int(41),
                },
                Instr::Arith {
                    op: ArithOp::Add,
                    rd: Reg::R1,
                    rs: Reg::R1,
                    src: SmallVal::int(1),
                },
            ],
            Terminator::Halt {
                ty: TTy::Int,
                sigma: StackTy::nil(),
                val: Reg::R1,
            },
        );
        round_trip(TComp::bare(seq.clone()));
        round_trip(HeapFrag::from_pairs([(
            Label::new("blk"),
            HeapVal::Code(CodeBlock {
                delta: vec![],
                chi: RegFileTy(Default::default()),
                sigma: StackTy::nil(),
                q: RetMarker::Out,
                body: seq,
            }),
        )]));
    }

    #[test]
    fn spans_round_trip() {
        let mut t = SpanTable::new();
        t.root = Span::new(1, 1, 3, 10);
        t.record("blk", Span::new(2, 4, 2, 9));
        let bytes = encode_to_vec(&t);
        let back: SpanTable = decode_from_slice(&bytes).unwrap();
        assert_eq!(back.root, t.root);
        assert_eq!(back.resolve("blk"), t.resolve("blk"));
    }
}
