//! The disk tier: atomic, checksummed, full-key-verified, LRU-capped.
//!
//! Layout: one directory per [`Stage`] under the store root, one file
//! per artifact named by the 64-bit FNV-1a digest of its key
//! (`<digest16hex>.art`). The digest only *names* the file — the
//! container embeds the full key, and [`DiskStore::load`] compares it
//! byte-for-byte, so a digest collision degrades to a miss, never to a
//! wrong artifact.
//!
//! Container format (all integers little-endian):
//!
//! ```text
//! magic    4 bytes  b"FTST"
//! version  u16      FORMAT_VERSION
//! stage    u8       Stage tag
//! checksum u64      FNV-1a over key ++ payload
//! key_len  u64      followed by that many key bytes
//! pay_len  u64      followed by that many payload bytes (exactly to EOF)
//! ```
//!
//! Writes go to a temp file in the same directory and are `rename`d
//! into place, so readers never observe a partial entry. Counter
//! protocol: `load` counts a miss for an absent entry and a
//! reject+miss (deleting the file) for a container-level failure; a
//! successful container read returns the payload *without* counting a
//! hit — the caller counts [`DiskStore::hit`] after its own decode and
//! semantic verification succeed, or [`DiskStore::reject`] if they
//! fail. Either way `hits + misses == lookups` holds per stage.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::SystemTime;

use funtal_syntax::hash::{hash_bytes, hash_bytes_from};

/// Magic bytes opening every container file.
pub const MAGIC: [u8; 4] = *b"FTST";

/// The on-disk format version. Any change to the container layout or
/// to a payload codec's byte layout must bump this; old entries then
/// reject on load and degrade to recompute.
pub const FORMAT_VERSION: u16 = 1;

/// The four artifact kinds the pipeline caches.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Stage {
    /// Parsed FT terms, keyed on source text.
    Parse,
    /// Typecheck results (F types), keyed on the term's canonical rendering.
    Check,
    /// Bytecode lowerings, keyed on the term's canonical rendering.
    Lower,
    /// MiniF compilation artifacts, keyed on source text + options.
    Compile,
}

impl Stage {
    /// Every stage, in fixed order.
    pub const ALL: [Stage; 4] = [Stage::Parse, Stage::Check, Stage::Lower, Stage::Compile];

    /// The stage's directory name under the store root.
    pub fn dir(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Check => "check",
            Stage::Lower => "lower",
            Stage::Compile => "compile",
        }
    }

    /// The stage's container tag byte.
    pub fn tag(self) -> u8 {
        match self {
            Stage::Parse => 0,
            Stage::Check => 1,
            Stage::Lower => 2,
            Stage::Compile => 3,
        }
    }

    /// Inverse of [`Stage::tag`].
    pub fn from_tag(tag: u8) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.tag() == tag)
    }

    fn index(self) -> usize {
        self.tag() as usize
    }
}

/// Why a container failed to parse (all count as rejects).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContainerError {
    /// The file is shorter than the fixed header.
    Truncated,
    /// The magic bytes are wrong.
    BadMagic,
    /// The format version does not match [`FORMAT_VERSION`].
    BadVersion(u16),
    /// The stage tag is unknown or does not match the lookup's stage.
    BadStage(u8),
    /// The checksum over key ++ payload does not match.
    BadChecksum,
    /// The embedded lengths disagree with the file size.
    BadLength,
    /// The embedded key differs from the lookup key (digest collision
    /// or renamed file).
    KeyMismatch,
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::Truncated => write!(f, "truncated container"),
            ContainerError::BadMagic => write!(f, "bad magic"),
            ContainerError::BadVersion(v) => {
                write!(f, "format version {v} (expected {FORMAT_VERSION})")
            }
            ContainerError::BadStage(t) => write!(f, "bad stage tag {t}"),
            ContainerError::BadChecksum => write!(f, "checksum mismatch"),
            ContainerError::BadLength => write!(f, "length fields disagree with file size"),
            ContainerError::KeyMismatch => write!(f, "embedded key differs from lookup key"),
        }
    }
}

impl std::error::Error for ContainerError {}

#[derive(Default, Debug)]
struct StageCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    rejects: AtomicU64,
}

/// A point-in-time snapshot of one stage's disk-tier counters.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct StageDiskStats {
    /// Loads whose artifact was served from disk (after verification).
    pub hits: u64,
    /// Loads that fell through to recompute (absent or rejected).
    pub misses: u64,
    /// Entries rejected by verification (also counted as misses).
    pub rejects: u64,
}

impl StageDiskStats {
    /// Total lookups observed (`hits + misses`).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// Disk-tier counters for all four stages.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct StoreStats {
    /// Parse-stage counters.
    pub parse: StageDiskStats,
    /// Typecheck-stage counters.
    pub check: StageDiskStats,
    /// Lowering-stage counters.
    pub lower: StageDiskStats,
    /// Compile-stage counters.
    pub compile: StageDiskStats,
}

impl StoreStats {
    /// The counters for `stage`.
    pub fn stage(&self, stage: Stage) -> StageDiskStats {
        match stage {
            Stage::Parse => self.parse,
            Stage::Check => self.check,
            Stage::Lower => self.lower,
            Stage::Compile => self.compile,
        }
    }

    /// Sum of hits across stages.
    pub fn total_hits(&self) -> u64 {
        Stage::ALL.iter().map(|s| self.stage(*s).hits).sum()
    }

    /// Sum of rejects across stages.
    pub fn total_rejects(&self) -> u64 {
        Stage::ALL.iter().map(|s| self.stage(*s).rejects).sum()
    }
}

/// One on-disk entry, as seen by `stats`/`gc`/`verify`.
#[derive(Clone, Debug)]
pub struct EntryInfo {
    /// The stage the entry belongs to.
    pub stage: Stage,
    /// Full path of the container file.
    pub path: PathBuf,
    /// File size in bytes.
    pub bytes: u64,
    /// Last-access time (the LRU clock; touched on every hit).
    pub mtime: SystemTime,
}

/// What an eviction pass did.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct GcReport {
    /// Entries examined.
    pub examined: usize,
    /// Entries removed.
    pub removed: usize,
    /// Store size before, in bytes.
    pub bytes_before: u64,
    /// Store size after, in bytes.
    pub bytes_after: u64,
}

/// The disk-backed artifact store. Cheap to share (`Arc`) across the
/// batch engine's worker threads; all counters are atomic and all file
/// operations are crash-safe (temp file + rename).
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    cap_bytes: u64,
    counters: [StageCounters; 4],
    evicted: AtomicU64,
    tmp_seq: AtomicU64,
}

const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DiskStore>()
};

impl DiskStore {
    /// Opens (creating if needed) a store rooted at `root` with a size
    /// cap of `cap_bytes` (`0` = unlimited).
    pub fn open(root: impl Into<PathBuf>, cap_bytes: u64) -> io::Result<DiskStore> {
        let root = root.into();
        for stage in Stage::ALL {
            fs::create_dir_all(root.join(stage.dir()))?;
        }
        Ok(DiskStore {
            root,
            cap_bytes,
            counters: Default::default(),
            evicted: AtomicU64::new(0),
            tmp_seq: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The configured size cap in bytes (`0` = unlimited).
    pub fn cap_bytes(&self) -> u64 {
        self.cap_bytes
    }

    /// Entries evicted by this process (cap enforcement + `gc`).
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// The container file path for `key` in `stage`.
    pub fn entry_path(&self, stage: Stage, key: &[u8]) -> PathBuf {
        self.root
            .join(stage.dir())
            .join(format!("{:016x}.art", hash_bytes(key)))
    }

    /// Looks up `key`, returning the verified container payload.
    ///
    /// Counts a miss when absent and a reject+miss (removing the file)
    /// on any container-level failure. A `Some` return has counted
    /// *nothing* yet: the caller must follow up with [`DiskStore::hit`]
    /// once its decode + semantic verification succeed, or
    /// [`DiskStore::reject`] if they fail.
    pub fn load(&self, stage: Stage, key: &[u8]) -> Option<Vec<u8>> {
        let path = self.entry_path(stage, key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.counters[stage.index()]
                    .misses
                    .fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match parse_container(&bytes, Some(stage), Some(key)) {
            Ok((_, _, payload)) => {
                // Touch the LRU clock; best-effort (a failed touch only
                // makes the entry look colder than it is).
                if let Ok(f) = fs::OpenOptions::new().write(true).open(&path) {
                    let _ = f.set_modified(SystemTime::now());
                }
                Some(payload)
            }
            Err(_) => {
                let c = &self.counters[stage.index()];
                c.rejects.fetch_add(1, Ordering::Relaxed);
                c.misses.fetch_add(1, Ordering::Relaxed);
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Counts a disk hit for `stage` (call after decode + verify).
    pub fn hit(&self, stage: Stage) {
        self.counters[stage.index()]
            .hits
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a post-container rejection for `stage` — the payload
    /// parsed as a container but failed decode or semantic
    /// verification — removing the entry and counting reject+miss.
    pub fn reject(&self, stage: Stage, key: &[u8]) {
        let c = &self.counters[stage.index()];
        c.rejects.fetch_add(1, Ordering::Relaxed);
        c.misses.fetch_add(1, Ordering::Relaxed);
        let _ = fs::remove_file(self.entry_path(stage, key));
    }

    /// Writes `payload` for `key` atomically, then enforces the size
    /// cap (evicting least-recently-used entries, never this one —
    /// it carries the freshest mtime).
    pub fn save(&self, stage: Stage, key: &[u8], payload: &[u8]) -> io::Result<()> {
        let dir = self.root.join(stage.dir());
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let mut bytes = Vec::with_capacity(31 + key.len() + payload.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bytes.push(stage.tag());
        let checksum = hash_bytes_from(hash_bytes(key), payload);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        bytes.extend_from_slice(&(key.len() as u64).to_le_bytes());
        bytes.extend_from_slice(key);
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(payload);
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, self.entry_path(stage, key))?;
        if self.cap_bytes > 0 {
            let _ = self.enforce_cap(self.cap_bytes);
        }
        Ok(())
    }

    /// Every entry of `stage`, sorted by file name (deterministic).
    pub fn entries(&self, stage: Stage) -> io::Result<Vec<EntryInfo>> {
        let dir = self.root.join(stage.dir());
        let mut out = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let is_artifact = path.extension().is_some_and(|e| e == "art");
            if !is_artifact {
                continue;
            }
            let meta = entry.metadata()?;
            out.push(EntryInfo {
                stage,
                path,
                bytes: meta.len(),
                mtime: meta.modified().unwrap_or(SystemTime::UNIX_EPOCH),
            });
        }
        out.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(out)
    }

    /// Every entry of every stage.
    pub fn all_entries(&self) -> io::Result<Vec<EntryInfo>> {
        let mut out = Vec::new();
        for stage in Stage::ALL {
            out.extend(self.entries(stage)?);
        }
        Ok(out)
    }

    /// Evicts least-recently-used entries until the store fits in
    /// `cap_bytes` (`0` = remove nothing, report only).
    pub fn enforce_cap(&self, cap_bytes: u64) -> io::Result<GcReport> {
        let mut entries = self.all_entries()?;
        let bytes_before: u64 = entries.iter().map(|e| e.bytes).sum();
        let mut report = GcReport {
            examined: entries.len(),
            removed: 0,
            bytes_before,
            bytes_after: bytes_before,
        };
        if cap_bytes == 0 || bytes_before <= cap_bytes {
            return Ok(report);
        }
        // Oldest access first; path breaks ties deterministically.
        entries.sort_by(|a, b| a.mtime.cmp(&b.mtime).then_with(|| a.path.cmp(&b.path)));
        let mut total = bytes_before;
        for e in entries {
            if total <= cap_bytes {
                break;
            }
            fs::remove_file(&e.path)?;
            total -= e.bytes;
            report.removed += 1;
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        report.bytes_after = total;
        Ok(report)
    }

    /// Runs eviction against the configured cap.
    pub fn gc(&self) -> io::Result<GcReport> {
        self.enforce_cap(self.cap_bytes)
    }

    /// Snapshot of the disk-tier counters.
    pub fn stats(&self) -> StoreStats {
        let snap = |s: Stage| {
            let c = &self.counters[s.index()];
            StageDiskStats {
                hits: c.hits.load(Ordering::Relaxed),
                misses: c.misses.load(Ordering::Relaxed),
                rejects: c.rejects.load(Ordering::Relaxed),
            }
        };
        StoreStats {
            parse: snap(Stage::Parse),
            check: snap(Stage::Check),
            lower: snap(Stage::Lower),
            compile: snap(Stage::Compile),
        }
    }
}

/// Parses a container, optionally checking its stage and key. Returns
/// `(stage, key, payload)`. Pure (no counters, no file ops) — shared
/// by [`DiskStore::load`] and the `store verify` walk.
pub fn parse_container(
    bytes: &[u8],
    expect_stage: Option<Stage>,
    expect_key: Option<&[u8]>,
) -> Result<(Stage, Vec<u8>, Vec<u8>), ContainerError> {
    // Fixed header: 4 magic + 2 version + 1 stage + 8 checksum + 8 key_len.
    if bytes.len() < 23 {
        return Err(ContainerError::Truncated);
    }
    if bytes[0..4] != MAGIC {
        return Err(ContainerError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != FORMAT_VERSION {
        return Err(ContainerError::BadVersion(version));
    }
    let stage = Stage::from_tag(bytes[6]).ok_or(ContainerError::BadStage(bytes[6]))?;
    if let Some(expect) = expect_stage {
        if stage != expect {
            return Err(ContainerError::BadStage(bytes[6]));
        }
    }
    let checksum = u64::from_le_bytes(bytes[7..15].try_into().expect("8 bytes"));
    let key_len = u64::from_le_bytes(bytes[15..23].try_into().expect("8 bytes"));
    let rest = &bytes[23..];
    let key_len = usize::try_from(key_len).map_err(|_| ContainerError::BadLength)?;
    if rest.len() < key_len + 8 {
        return Err(ContainerError::BadLength);
    }
    let key = &rest[..key_len];
    let pay_len = u64::from_le_bytes(rest[key_len..key_len + 8].try_into().expect("8 bytes"));
    let payload = &rest[key_len + 8..];
    if pay_len != payload.len() as u64 {
        return Err(ContainerError::BadLength);
    }
    if hash_bytes_from(hash_bytes(key), payload) != checksum {
        return Err(ContainerError::BadChecksum);
    }
    if let Some(expect) = expect_key {
        if key != expect {
            return Err(ContainerError::KeyMismatch);
        }
    }
    Ok((stage, key.to_vec(), payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str, cap: u64) -> DiskStore {
        let dir =
            std::env::temp_dir().join(format!("funtal_store_unit_{}_{}", std::process::id(), tag));
        let _ = fs::remove_dir_all(&dir);
        DiskStore::open(dir, cap).expect("open store")
    }

    #[test]
    fn save_load_round_trip_counts_protocol() {
        let s = temp_store("roundtrip", 0);
        assert_eq!(s.load(Stage::Parse, b"k"), None); // cold: miss
        s.save(Stage::Parse, b"k", b"artifact").unwrap();
        let got = s.load(Stage::Parse, b"k").expect("warm load");
        assert_eq!(got, b"artifact");
        s.hit(Stage::Parse);
        let st = s.stats().parse;
        assert_eq!((st.hits, st.misses, st.rejects), (1, 1, 0));
        assert_eq!(st.lookups(), 2);
    }

    #[test]
    fn stages_do_not_alias() {
        let s = temp_store("stages", 0);
        s.save(Stage::Parse, b"k", b"parse-art").unwrap();
        assert_eq!(s.load(Stage::Check, b"k"), None);
        assert_eq!(
            s.load(Stage::Parse, b"k").as_deref(),
            Some(&b"parse-art"[..])
        );
    }

    #[test]
    fn key_mismatch_rejects_never_serves() {
        let s = temp_store("collide", 0);
        s.save(Stage::Check, b"first-key", b"first-payload")
            .unwrap();
        // Simulate a 64-bit digest collision: the container for
        // `first-key` sitting at the path `other-key` hashes to.
        let src = s.entry_path(Stage::Check, b"first-key");
        let dst = s.entry_path(Stage::Check, b"other-key");
        fs::copy(&src, &dst).unwrap();
        assert_eq!(s.load(Stage::Check, b"other-key"), None);
        let st = s.stats().check;
        assert_eq!((st.hits, st.misses, st.rejects), (0, 1, 1));
        assert!(!dst.exists(), "rejected entry is removed");
        // The original entry is untouched.
        assert_eq!(
            s.load(Stage::Check, b"first-key").as_deref(),
            Some(&b"first-payload"[..])
        );
    }

    #[test]
    fn explicit_reject_removes_and_counts() {
        let s = temp_store("reject", 0);
        s.save(Stage::Lower, b"k", b"payload-that-wont-decode")
            .unwrap();
        assert!(s.load(Stage::Lower, b"k").is_some());
        s.reject(Stage::Lower, b"k");
        let st = s.stats().lower;
        assert_eq!((st.hits, st.misses, st.rejects), (0, 1, 1));
        assert!(!s.entry_path(Stage::Lower, b"k").exists());
    }

    #[test]
    fn every_single_byte_flip_rejects() {
        let s = temp_store("bitflip", 0);
        s.save(Stage::Compile, b"the-key", b"the-payload").unwrap();
        let path = s.entry_path(Stage::Compile, b"the-key");
        let original = fs::read(&path).unwrap();
        for i in 0..original.len() {
            for bit in [0x01u8, 0x80u8] {
                let mut mutated = original.clone();
                mutated[i] ^= bit;
                fs::write(&path, &mutated).unwrap();
                assert_eq!(
                    s.load(Stage::Compile, b"the-key"),
                    None,
                    "flip at byte {i} must reject"
                );
                // load removed the corrupt file; restore for the next flip.
                fs::write(&path, &original).unwrap();
            }
        }
        let st = s.stats().compile;
        assert_eq!(st.rejects, 2 * original.len() as u64);
        assert_eq!(st.misses, st.rejects);
    }

    #[test]
    fn truncations_reject() {
        let s = temp_store("trunc", 0);
        s.save(Stage::Parse, b"key", b"some payload bytes").unwrap();
        let path = s.entry_path(Stage::Parse, b"key");
        let original = fs::read(&path).unwrap();
        for cut in 0..original.len() {
            fs::write(&path, &original[..cut]).unwrap();
            assert_eq!(s.load(Stage::Parse, b"key"), None, "cut at {cut}");
        }
    }

    #[test]
    fn version_bump_rejects() {
        let s = temp_store("version", 0);
        s.save(Stage::Parse, b"key", b"payload").unwrap();
        let path = s.entry_path(Stage::Parse, b"key");
        let mut bytes = fs::read(&path).unwrap();
        bytes[4] = bytes[4].wrapping_add(1); // version field
        fs::write(&path, &bytes).unwrap();
        assert_eq!(s.load(Stage::Parse, b"key"), None);
        assert_eq!(s.stats().parse.rejects, 1);
    }

    #[test]
    fn lru_eviction_respects_cap_and_recency() {
        let s = temp_store("lru", 0);
        let payload = vec![0u8; 128];
        s.save(Stage::Parse, b"old", &payload).unwrap();
        s.save(Stage::Parse, b"mid", &payload).unwrap();
        s.save(Stage::Parse, b"new", &payload).unwrap();
        // Backdate mtimes so recency is unambiguous even on coarse
        // filesystem clocks.
        let t0 = SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(1_000);
        let t1 = SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(2_000);
        let t2 = SystemTime::UNIX_EPOCH + std::time::Duration::from_secs(3_000);
        for (key, t) in [(&b"old"[..], t0), (&b"mid"[..], t1), (&b"new"[..], t2)] {
            let f = fs::OpenOptions::new()
                .write(true)
                .open(s.entry_path(Stage::Parse, key))
                .unwrap();
            f.set_modified(t).unwrap();
        }
        let one = fs::metadata(s.entry_path(Stage::Parse, b"old"))
            .unwrap()
            .len();
        let report = s.enforce_cap(2 * one).unwrap();
        assert_eq!(report.examined, 3);
        assert_eq!(report.removed, 1);
        assert!(!s.entry_path(Stage::Parse, b"old").exists());
        assert!(s.entry_path(Stage::Parse, b"mid").exists());
        assert!(s.entry_path(Stage::Parse, b"new").exists());
        assert_eq!(s.evicted(), 1);
    }

    #[test]
    fn gc_with_zero_cap_reports_without_removing() {
        let s = temp_store("gc0", 0);
        s.save(Stage::Parse, b"a", b"x").unwrap();
        let report = s.gc().unwrap();
        assert_eq!(report.removed, 0);
        assert_eq!(report.examined, 1);
        assert!(report.bytes_before > 0);
    }

    #[test]
    fn temp_files_are_invisible_to_entries() {
        let s = temp_store("tmpvis", 0);
        s.save(Stage::Parse, b"a", b"x").unwrap();
        fs::write(s.root().join("parse").join(".tmp-999-0"), b"partial").unwrap();
        let entries = s.entries(Stage::Parse).unwrap();
        assert_eq!(entries.len(), 1);
    }
}
