//! Deterministic generation of test inputs and distinguishing contexts.
//!
//! Inputs play the role of the "related inputs" quantified over by the
//! paper's `V⟦τ⟧` at function types; contexts approximate the contexts
//! quantified over by `≈ctx` (Theorem 5.2).

use funtal_syntax::build::*;
use funtal_syntax::{FExpr, FTy, TComp};

/// A tiny deterministic RNG (SplitMix64), so every equivalence verdict
/// is reproducible from its seed without external dependencies in this
/// crate's core path.
#[derive(Clone, Debug)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A small integer in `[-bound, bound]`.
    pub fn small_int(&mut self, bound: i64) -> i64 {
        let span = (2 * bound + 1) as u64;
        (self.next_u64() % span) as i64 - bound
    }

    /// An index below `n`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// Generates a closed F *value* of the given type (used as a "related
/// input": the same value is fed to both sides).
///
/// Function-type inputs are drawn from a small grammar of total
/// functions (constants, projections of the argument into arithmetic).
/// Stack-modifying arrows and type variables are out of scope for
/// generation and fall back to the simplest inhabitant available.
pub fn gen_value(ty: &FTy, rng: &mut SplitMix, depth: u32) -> FExpr {
    match ty {
        FTy::Int => fint_e(rng.small_int(20)),
        FTy::Unit => funit_e(),
        FTy::Tuple(ts) => ftuple(ts.iter().map(|t| gen_value(t, rng, depth)).collect()),
        FTy::Rec(_, _) => {
            // Build a fold of a generated value at the unrolled type,
            // bottoming out quickly.
            if depth == 0 {
                // A one-level unrolling is always possible for the types
                // our tests use; deeper recursive structure is capped.
                fold_min(ty)
            } else {
                match unroll(ty) {
                    Some(inner) => ffold(ty.clone(), gen_value(&inner, rng, depth - 1)),
                    None => fold_min(ty),
                }
            }
        }
        FTy::Arrow {
            params,
            phi_in,
            phi_out,
            ret,
        } => {
            if !phi_in.is_empty() || !phi_out.is_empty() {
                // Stack-modifying functions are not generated; use a
                // function that ignores the stack discipline is unsound,
                // so tests supply their own inputs at these types.
                // Fall back to a constant-result ordinary-shaped lambda.
            }
            let names: Vec<String> = (1..=params.len()).map(|i| format!("g{i}")).collect();
            let body = gen_fun_body(params, ret, &names, rng, depth);
            // The stack-tail binder is indexed by the generation depth:
            // any lambda nested inside this one is generated at a
            // strictly smaller depth, so binders never shadow (the FT
            // checker rejects duplicate type variables in Δ).
            let zeta = format!("zg{depth}");
            lam_z(
                names
                    .iter()
                    .zip(params)
                    .map(|(n, t)| (n.as_str(), t.clone()))
                    .collect(),
                &zeta,
                body,
            )
        }
        FTy::Var(_) => funit_e(),
    }
}

fn unroll(ty: &FTy) -> Option<FTy> {
    let FTy::Rec(a, body) = ty else { return None };
    Some(funtal_fun::check::subst_fty_var(body, a, ty))
}

fn fold_min(ty: &FTy) -> FExpr {
    fold_min_at(ty, 0)
}

fn fold_min_at(ty: &FTy, lvl: u32) -> FExpr {
    match unroll(ty) {
        Some(inner) => ffold(ty.clone(), min_value_at(&inner, lvl)),
        None => funit_e(),
    }
}

/// The least-effort inhabitant of a type (total, no recursion).
pub fn min_value(ty: &FTy) -> FExpr {
    min_value_at(ty, 0)
}

/// `lvl` indexes the stack-tail binder of each lambda so nested
/// lambdas never shadow (`zm0` contains `zm1` contains ...).
fn min_value_at(ty: &FTy, lvl: u32) -> FExpr {
    match ty {
        FTy::Int => fint_e(0),
        FTy::Unit | FTy::Var(_) => funit_e(),
        FTy::Tuple(ts) => ftuple(ts.iter().map(|t| min_value_at(t, lvl)).collect()),
        FTy::Rec(_, _) => fold_min_at(ty, lvl),
        FTy::Arrow { params, ret, .. } => {
            let names: Vec<String> = (1..=params.len()).map(|i| format!("m{i}")).collect();
            let zeta = format!("zm{lvl}");
            lam_z(
                names
                    .iter()
                    .zip(params)
                    .map(|(n, t)| (n.as_str(), t.clone()))
                    .collect(),
                &zeta,
                min_value_at(ret, lvl + 1),
            )
        }
    }
}

/// A body for a generated function: combines integer parameters with
/// arithmetic, calls function parameters, or returns a constant.
fn gen_fun_body(
    params: &[FTy],
    ret: &FTy,
    names: &[String],
    rng: &mut SplitMix,
    depth: u32,
) -> FExpr {
    if *ret == FTy::Int && depth > 0 {
        // Try to involve the parameters.
        let int_params: Vec<&String> = names
            .iter()
            .zip(params)
            .filter(|(_, t)| **t == FTy::Int)
            .map(|(n, _)| n)
            .collect();
        let fun_params: Vec<(&String, &FTy)> = names
            .iter()
            .zip(params)
            .filter(|(_, t)| matches!(t, FTy::Arrow { .. }))
            .collect();
        match rng.below(3) {
            0 if !int_params.is_empty() => {
                let p = var(int_params[rng.below(int_params.len())]);
                let k = fint_e(rng.small_int(5));
                return match rng.below(3) {
                    0 => fadd(p, k),
                    1 => fmul(p, k),
                    _ => fsub(k, p),
                };
            }
            1 if !fun_params.is_empty() => {
                let (n, t) = fun_params[rng.below(fun_params.len())];
                if let FTy::Arrow {
                    params: ps,
                    ret: r,
                    phi_in,
                    phi_out,
                } = t
                {
                    if **r == FTy::Int && phi_in.is_empty() && phi_out.is_empty() {
                        let args: Vec<FExpr> =
                            ps.iter().map(|t| gen_value(t, rng, depth - 1)).collect();
                        return app(var(n), args);
                    }
                }
            }
            _ => {}
        }
        return fint_e(rng.small_int(10));
    }
    gen_value(ret, rng, depth.saturating_sub(1))
}

/// A generated experiment: a context `C[·]`, a plugging function, and
/// the type of the whole experiment's result.
pub struct GenCtx {
    /// Human-readable description for counterexample reports.
    pub describe: String,
    /// The result type of the plugged program.
    pub result_ty: FTy,
    plug: Box<dyn Fn(&FExpr) -> FExpr>,
}

impl GenCtx {
    /// Plugs a term into the hole.
    pub fn plug(&self, e: &FExpr) -> FExpr {
        (self.plug)(e)
    }
}

/// Generates a distinguishing context for a term of type `ty`.
///
/// For ordinary function types the context applies the term to sampled
/// related inputs (the applicative experiments of `V⟦τ→τ'⟧`); for base
/// and tuple types it observes the value through arithmetic and
/// projections.
pub fn gen_context(ty: &FTy, rng: &mut SplitMix, depth: u32) -> GenCtx {
    match ty {
        FTy::Arrow {
            params,
            phi_in,
            phi_out,
            ret,
        } if phi_in.is_empty() && phi_out.is_empty() => {
            let args: Vec<FExpr> = params.iter().map(|t| gen_value(t, rng, depth)).collect();
            let describe = format!(
                "apply to ({})",
                args.iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let result_ty = (**ret).clone();
            GenCtx {
                describe,
                result_ty,
                plug: Box::new(move |e| app(e.clone(), args.clone())),
            }
        }
        FTy::Tuple(ts) if !ts.is_empty() => {
            let i = rng.below(ts.len()) + 1;
            let inner = gen_context(&ts[i - 1], rng, depth);
            let describe = format!("pi[{i}] then {}", inner.describe);
            let result_ty = inner.result_ty.clone();
            GenCtx {
                describe,
                result_ty,
                plug: Box::new(move |e| inner.plug(&proj(i, e.clone()))),
            }
        }
        FTy::Int => {
            let k = rng.small_int(7);
            GenCtx {
                describe: format!("add {k}"),
                result_ty: FTy::Int,
                plug: Box::new(move |e| fadd(e.clone(), fint_e(k))),
            }
        }
        FTy::Rec(_, _) => {
            if let Some(inner) = unroll(ty) {
                if depth > 0 {
                    let ictx = gen_context(&inner, rng, depth - 1);
                    let describe = format!("unfold then {}", ictx.describe);
                    let result_ty = ictx.result_ty.clone();
                    return GenCtx {
                        describe,
                        result_ty,
                        plug: Box::new(move |e| ictx.plug(&funfold(e.clone()))),
                    };
                }
            }
            identity_ctx(ty)
        }
        _ => identity_ctx(ty),
    }
}

// ---------------------------------------------------------------------------
// Whole-program generation (driver-level differential testing)
// ---------------------------------------------------------------------------

/// A generated whole program: closed, well-typed, with deterministic
/// observable behavior. The raw material of the driver's differential
/// tests, which assert that the Substitution oracle, the Environment
/// machine, and the batch engine agree on every one of these.
#[derive(Clone, Debug)]
pub struct GenProgram {
    /// Human-readable provenance for failure reports.
    pub describe: String,
    /// The closed program.
    pub expr: FExpr,
    /// Its FT type.
    pub ty: FTy,
}

/// Generates a small closed F type inhabited by [`gen_value`] (no
/// stack-modifying arrows, no type variables).
pub fn gen_type(rng: &mut SplitMix, depth: u32) -> FTy {
    let pick = if depth == 0 {
        rng.below(2)
    } else {
        rng.below(5)
    };
    match pick {
        0 => fint(),
        1 => funit(),
        2 => {
            let n = 1 + rng.below(3);
            ftuple_ty((0..n).map(|_| gen_type(rng, depth - 1)).collect())
        }
        3 => arrow(vec![fint()], fint()),
        _ => {
            let n = 1 + rng.below(2);
            arrow(
                (0..n).map(|_| gen_type(rng, depth - 1)).collect(),
                gen_type(rng, depth - 1),
            )
        }
    }
}

/// A pure-T boundary of type `int`: move a constant, do some assembly
/// arithmetic, halt (the `τFT` halt-translation rule of Fig 8).
///
/// T operands have no negative-literal concrete syntax, so immediates
/// stay non-negative — generated programs must round-trip through the
/// parser (the batch engine consumes their rendering as source).
pub fn gen_t_boundary(rng: &mut SplitMix) -> FExpr {
    let a = rng.below(20) as i64;
    let b = rng.below(9) as i64;
    let instr = match rng.below(3) {
        0 => add(r1(), r1(), int_v(b)),
        1 => sub(r1(), r1(), int_v(b)),
        _ => mul(r1(), r1(), int_v(b)),
    };
    boundary(
        fint(),
        TComp::bare(seq(
            vec![mv(r1(), int_v(a)), instr],
            halt(int(), nil(), r1()),
        )),
    )
}

/// The Fig 9/10 import/export shape of `examples/double_twice.ft`: an
/// F lambda whose body crosses into T, `import`s an F computation over
/// the argument (the `TFτ` value translation), combines it with
/// assembly arithmetic, and halts (translating back out via `τFT`).
pub fn gen_import_lam(rng: &mut SplitMix) -> FExpr {
    let j = rng.below(5) as i64;
    let k = rng.below(5) as i64;
    let import_body = match rng.below(3) {
        0 => var("x"),
        1 => fadd(var("x"), fint_e(j)),
        _ => fmul(var("x"), fint_e(j)),
    };
    let instr = match rng.below(3) {
        0 => add(r1(), r1(), int_v(k)),
        1 => mul(r1(), r1(), int_v(k)),
        _ => add(r1(), r1(), reg(r1())),
    };
    lam_z(
        vec![("x", fint())],
        "zl",
        boundary(
            fint(),
            TComp::bare(seq(
                vec![
                    protect(vec![], "zp"),
                    import(r1(), "zi", zvar("zp"), fint(), import_body),
                    instr,
                ],
                halt(int(), zvar("zp"), r1()),
            )),
        ),
    )
}

/// Generates one closed, well-typed program. The grammar mixes pure F
/// (values observed through generated contexts), pure-T boundaries,
/// Fig 9/10-style import/export lambdas, mixed F-over-T arithmetic,
/// and the paper's own figures at sampled inputs.
pub fn gen_program(rng: &mut SplitMix, depth: u32) -> GenProgram {
    match rng.below(6) {
        0 => {
            let ty = gen_type(rng, depth);
            let v = gen_value(&ty, rng, depth);
            let ctx = gen_context(&ty, rng, depth);
            GenProgram {
                describe: format!("pure F at {ty}: {}", ctx.describe),
                ty: ctx.result_ty.clone(),
                expr: ctx.plug(&v),
            }
        }
        1 => GenProgram {
            describe: "pure T boundary".to_string(),
            expr: gen_t_boundary(rng),
            ty: fint(),
        },
        2 => {
            let arg = rng.below(20) as i64;
            GenProgram {
                describe: format!("import/export lambda applied to {arg}"),
                expr: app(gen_import_lam(rng), vec![fint_e(arg)]),
                ty: fint(),
            }
        }
        3 => GenProgram {
            describe: "F arithmetic over two boundaries".to_string(),
            expr: fadd(
                gen_t_boundary(rng),
                fmul(fint_e(rng.small_int(5)), gen_t_boundary(rng)),
            ),
            ty: fint(),
        },
        4 => {
            let f = gen_value(&arrow(vec![fint()], fint()), rng, depth);
            GenProgram {
                describe: "generated function applied to a boundary result".to_string(),
                expr: app(f, vec![gen_t_boundary(rng)]),
                ty: fint(),
            }
        }
        _ => {
            let n = rng.below(6) as i64;
            match rng.below(3) {
                0 => GenProgram {
                    describe: format!("Fig 17 factT({n})"),
                    expr: app(funtal::figures::fig17_fact_t(), vec![fint_e(n)]),
                    ty: fint(),
                },
                1 => GenProgram {
                    describe: format!("Fig 17 factF({n})"),
                    expr: app(funtal::figures::fig17_fact_f(), vec![fint_e(n)]),
                    ty: fint(),
                },
                _ => GenProgram {
                    describe: "Fig 11 JIT example".to_string(),
                    expr: funtal::figures::fig11_jit(),
                    ty: fint(),
                },
            }
        }
    }
}

fn identity_ctx(ty: &FTy) -> GenCtx {
    GenCtx {
        describe: "observe directly".to_string(),
        result_ty: ty.clone(),
        plug: Box::new(|e| e.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funtal::typecheck;

    #[test]
    fn generated_values_are_well_typed() {
        let mut rng = SplitMix::new(7);
        let tys = [
            fint(),
            funit(),
            ftuple_ty(vec![fint(), funit()]),
            arrow(vec![fint()], fint()),
            arrow(vec![arrow(vec![fint()], fint())], fint()),
        ];
        for ty in &tys {
            for _ in 0..20 {
                let v = gen_value(ty, &mut rng, 3);
                assert!(v.is_value(), "{v} not a value");
                let got = typecheck(&v).unwrap();
                assert!(
                    funtal_syntax::alpha::alpha_eq_fty(&got, ty),
                    "generated {v} : {got}, wanted {ty}"
                );
            }
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = SplitMix::new(42);
        let mut b = SplitMix::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn generated_programs_typecheck_and_round_trip() {
        let mut rng = SplitMix::new(11);
        for i in 0..60 {
            let p = gen_program(&mut rng, 2);
            let got = typecheck(&p.expr)
                .unwrap_or_else(|e| panic!("#{i} {}: ill-typed: {e}\n{}", p.describe, p.expr));
            assert!(
                funtal_syntax::alpha::alpha_eq_fty(&got, &p.ty),
                "#{i} {}: typed {got}, claimed {}",
                p.describe,
                p.ty
            );
            // The batch engine consumes renderings as source; every
            // generated program must survive the round trip.
            let printed = p.expr.to_string();
            let reparsed = funtal_parser::parse_fexpr(&printed)
                .unwrap_or_else(|e| panic!("#{i} {}: reparse failed: {e}\n{printed}", p.describe));
            assert!(
                funtal_syntax::alpha::alpha_eq_fexpr(&reparsed, &p.expr),
                "#{i} {}: round-trip changed the term",
                p.describe
            );
        }
    }

    #[test]
    fn generated_programs_evaluate_deterministically() {
        let mut rng = SplitMix::new(23);
        for i in 0..40 {
            let p = gen_program(&mut rng, 2);
            let a = funtal::machine::eval_to_value(&p.expr, 200_000)
                .unwrap_or_else(|e| panic!("#{i} {}: stuck: {e}", p.describe));
            let b = funtal::machine::eval_to_value(&p.expr, 200_000).unwrap();
            assert_eq!(a, b, "#{i} {}", p.describe);
        }
    }

    #[test]
    fn contexts_produce_well_typed_programs() {
        let mut rng = SplitMix::new(3);
        let ty = arrow(vec![fint()], fint());
        let f = lam(vec![("x", fint())], fadd(var("x"), fint_e(1)));
        for _ in 0..10 {
            let ctx = gen_context(&ty, &mut rng, 2);
            let prog = ctx.plug(&f);
            typecheck(&prog).unwrap();
        }
    }
}
