//! Deterministic generation of test inputs and distinguishing contexts.
//!
//! Inputs play the role of the "related inputs" quantified over by the
//! paper's `V⟦τ⟧` at function types; contexts approximate the contexts
//! quantified over by `≈ctx` (Theorem 5.2).

use funtal_syntax::build::*;
use funtal_syntax::{FExpr, FTy};

/// A tiny deterministic RNG (SplitMix64), so every equivalence verdict
/// is reproducible from its seed without external dependencies in this
/// crate's core path.
#[derive(Clone, Debug)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A small integer in `[-bound, bound]`.
    pub fn small_int(&mut self, bound: i64) -> i64 {
        let span = (2 * bound + 1) as u64;
        (self.next_u64() % span) as i64 - bound
    }

    /// An index below `n`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// Generates a closed F *value* of the given type (used as a "related
/// input": the same value is fed to both sides).
///
/// Function-type inputs are drawn from a small grammar of total
/// functions (constants, projections of the argument into arithmetic).
/// Stack-modifying arrows and type variables are out of scope for
/// generation and fall back to the simplest inhabitant available.
pub fn gen_value(ty: &FTy, rng: &mut SplitMix, depth: u32) -> FExpr {
    match ty {
        FTy::Int => fint_e(rng.small_int(20)),
        FTy::Unit => funit_e(),
        FTy::Tuple(ts) => ftuple(ts.iter().map(|t| gen_value(t, rng, depth)).collect()),
        FTy::Rec(_, _) => {
            // Build a fold of a generated value at the unrolled type,
            // bottoming out quickly.
            if depth == 0 {
                // A one-level unrolling is always possible for the types
                // our tests use; deeper recursive structure is capped.
                fold_min(ty)
            } else {
                match unroll(ty) {
                    Some(inner) => ffold(ty.clone(), gen_value(&inner, rng, depth - 1)),
                    None => fold_min(ty),
                }
            }
        }
        FTy::Arrow {
            params,
            phi_in,
            phi_out,
            ret,
        } => {
            if !phi_in.is_empty() || !phi_out.is_empty() {
                // Stack-modifying functions are not generated; use a
                // function that ignores the stack discipline is unsound,
                // so tests supply their own inputs at these types.
                // Fall back to a constant-result ordinary-shaped lambda.
            }
            let names: Vec<String> = (1..=params.len()).map(|i| format!("g{i}")).collect();
            let body = gen_fun_body(params, ret, &names, rng, depth);
            lam_z(
                names
                    .iter()
                    .zip(params)
                    .map(|(n, t)| (n.as_str(), t.clone()))
                    .collect(),
                "zg",
                body,
            )
        }
        FTy::Var(_) => funit_e(),
    }
}

fn unroll(ty: &FTy) -> Option<FTy> {
    let FTy::Rec(a, body) = ty else { return None };
    Some(funtal_fun::check::subst_fty_var(body, a, ty))
}

fn fold_min(ty: &FTy) -> FExpr {
    match unroll(ty) {
        Some(inner) => ffold(ty.clone(), min_value(&inner)),
        None => funit_e(),
    }
}

/// The least-effort inhabitant of a type (total, no recursion).
pub fn min_value(ty: &FTy) -> FExpr {
    match ty {
        FTy::Int => fint_e(0),
        FTy::Unit | FTy::Var(_) => funit_e(),
        FTy::Tuple(ts) => ftuple(ts.iter().map(min_value).collect()),
        FTy::Rec(_, _) => fold_min(ty),
        FTy::Arrow { params, ret, .. } => {
            let names: Vec<String> = (1..=params.len()).map(|i| format!("m{i}")).collect();
            lam_z(
                names
                    .iter()
                    .zip(params)
                    .map(|(n, t)| (n.as_str(), t.clone()))
                    .collect(),
                "zm",
                min_value(ret),
            )
        }
    }
}

/// A body for a generated function: combines integer parameters with
/// arithmetic, calls function parameters, or returns a constant.
fn gen_fun_body(
    params: &[FTy],
    ret: &FTy,
    names: &[String],
    rng: &mut SplitMix,
    depth: u32,
) -> FExpr {
    if *ret == FTy::Int && depth > 0 {
        // Try to involve the parameters.
        let int_params: Vec<&String> = names
            .iter()
            .zip(params)
            .filter(|(_, t)| **t == FTy::Int)
            .map(|(n, _)| n)
            .collect();
        let fun_params: Vec<(&String, &FTy)> = names
            .iter()
            .zip(params)
            .filter(|(_, t)| matches!(t, FTy::Arrow { .. }))
            .collect();
        match rng.below(3) {
            0 if !int_params.is_empty() => {
                let p = var(int_params[rng.below(int_params.len())]);
                let k = fint_e(rng.small_int(5));
                return match rng.below(3) {
                    0 => fadd(p, k),
                    1 => fmul(p, k),
                    _ => fsub(k, p),
                };
            }
            1 if !fun_params.is_empty() => {
                let (n, t) = fun_params[rng.below(fun_params.len())];
                if let FTy::Arrow {
                    params: ps,
                    ret: r,
                    phi_in,
                    phi_out,
                } = t
                {
                    if **r == FTy::Int && phi_in.is_empty() && phi_out.is_empty() {
                        let args: Vec<FExpr> =
                            ps.iter().map(|t| gen_value(t, rng, depth - 1)).collect();
                        return app(var(n), args);
                    }
                }
            }
            _ => {}
        }
        return fint_e(rng.small_int(10));
    }
    gen_value(ret, rng, depth.saturating_sub(1))
}

/// A generated experiment: a context `C[·]`, a plugging function, and
/// the type of the whole experiment's result.
pub struct GenCtx {
    /// Human-readable description for counterexample reports.
    pub describe: String,
    /// The result type of the plugged program.
    pub result_ty: FTy,
    plug: Box<dyn Fn(&FExpr) -> FExpr>,
}

impl GenCtx {
    /// Plugs a term into the hole.
    pub fn plug(&self, e: &FExpr) -> FExpr {
        (self.plug)(e)
    }
}

/// Generates a distinguishing context for a term of type `ty`.
///
/// For ordinary function types the context applies the term to sampled
/// related inputs (the applicative experiments of `V⟦τ→τ'⟧`); for base
/// and tuple types it observes the value through arithmetic and
/// projections.
pub fn gen_context(ty: &FTy, rng: &mut SplitMix, depth: u32) -> GenCtx {
    match ty {
        FTy::Arrow {
            params,
            phi_in,
            phi_out,
            ret,
        } if phi_in.is_empty() && phi_out.is_empty() => {
            let args: Vec<FExpr> = params.iter().map(|t| gen_value(t, rng, depth)).collect();
            let describe = format!(
                "apply to ({})",
                args.iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            let result_ty = (**ret).clone();
            GenCtx {
                describe,
                result_ty,
                plug: Box::new(move |e| app(e.clone(), args.clone())),
            }
        }
        FTy::Tuple(ts) if !ts.is_empty() => {
            let i = rng.below(ts.len()) + 1;
            let inner = gen_context(&ts[i - 1], rng, depth);
            let describe = format!("pi[{i}] then {}", inner.describe);
            let result_ty = inner.result_ty.clone();
            GenCtx {
                describe,
                result_ty,
                plug: Box::new(move |e| inner.plug(&proj(i, e.clone()))),
            }
        }
        FTy::Int => {
            let k = rng.small_int(7);
            GenCtx {
                describe: format!("add {k}"),
                result_ty: FTy::Int,
                plug: Box::new(move |e| fadd(e.clone(), fint_e(k))),
            }
        }
        FTy::Rec(_, _) => {
            if let Some(inner) = unroll(ty) {
                if depth > 0 {
                    let ictx = gen_context(&inner, rng, depth - 1);
                    let describe = format!("unfold then {}", ictx.describe);
                    let result_ty = ictx.result_ty.clone();
                    return GenCtx {
                        describe,
                        result_ty,
                        plug: Box::new(move |e| ictx.plug(&funfold(e.clone()))),
                    };
                }
            }
            identity_ctx(ty)
        }
        _ => identity_ctx(ty),
    }
}

fn identity_ctx(ty: &FTy) -> GenCtx {
    GenCtx {
        describe: "observe directly".to_string(),
        result_ty: ty.clone(),
        plug: Box::new(|e| e.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funtal::typecheck;

    #[test]
    fn generated_values_are_well_typed() {
        let mut rng = SplitMix::new(7);
        let tys = [
            fint(),
            funit(),
            ftuple_ty(vec![fint(), funit()]),
            arrow(vec![fint()], fint()),
            arrow(vec![arrow(vec![fint()], fint())], fint()),
        ];
        for ty in &tys {
            for _ in 0..20 {
                let v = gen_value(ty, &mut rng, 3);
                assert!(v.is_value(), "{v} not a value");
                let got = typecheck(&v).unwrap();
                assert!(
                    funtal_syntax::alpha::alpha_eq_fty(&got, ty),
                    "generated {v} : {got}, wanted {ty}"
                );
            }
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = SplitMix::new(42);
        let mut b = SplitMix::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn contexts_produce_well_typed_programs() {
        let mut rng = SplitMix::new(3);
        let ty = arrow(vec![fint()], fint());
        let f = lam(vec![("x", fint())], fadd(var("x"), fint_e(1)));
        for _ in 0..10 {
            let ctx = gen_context(&ty, &mut rng, 2);
            let prog = ctx.plug(&f);
            typecheck(&prog).unwrap();
        }
    }
}
