//! Observational-equivalence testing for FunTAL components, in the shape
//! of the paper's logical relation (§5, Figs 13–15).
//!
//! The paper's step-indexed Kripke logical relation is a *proof method*;
//! this crate operationalizes it as a **bounded testing relation**
//! (deviation D8 in DESIGN.md):
//!
//! - [`observe`] runs a component for up to `k` steps and records an
//!   [`Observation`] — the executable analogue of the `O` relation;
//! - [`logrel::v_rel`] relates two values at an F type: base values
//!   structurally, tuples pointwise, and functions by applying both to
//!   the same sampled related inputs — the analogue of `V⟦τ⟧`;
//! - [`logrel::e_rel`] relates two expressions by comparing their
//!   observations and relating result values — the analogue of
//!   `E⟦q ⊢ τ;σ⟧` at the `out` marker;
//! - [`ctx_equiv`] additionally plugs both terms into generated
//!   contexts, approximating `≈ctx`.
//!
//! Like the step index `k` in the paper's worlds, the fuel bound means a
//! verdict of "no difference found" is evidence, not proof; a reported
//! [`Counterexample`] is, however, a genuine inequivalence witness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod logrel;

use std::fmt;

use funtal::machine::{run_fexpr_threaded, FtOutcome, RunCfg};
use funtal_syntax::alpha::alpha_eq_fexpr;
use funtal_syntax::{FExpr, FTy};
use funtal_tal::trace::NullTracer;

/// What a fuel-bounded run of a program reveals.
#[derive(Clone, Debug, PartialEq)]
pub enum Observation {
    /// Terminated with a value (compared structurally at base types,
    /// via [`logrel::v_rel`] otherwise).
    Value(FExpr),
    /// Still running after the fuel bound — treated as divergence at
    /// this index, like running out of steps in the paper's
    /// step-indexed worlds.
    Timeout,
    /// The machine got stuck or faulted (never happens for well-typed
    /// programs).
    Fault(String),
}

impl fmt::Display for Observation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Observation::Value(v) => write!(f, "value {v}"),
            Observation::Timeout => f.write_str("timeout (diverging?)"),
            Observation::Fault(e) => write!(f, "fault: {e}"),
        }
    }
}

/// Runs a closed F expression and observes the outcome.
pub fn observe(e: &FExpr, fuel: u64) -> Observation {
    match run_fexpr_threaded(e, RunCfg::with_fuel(fuel), NullTracer) {
        Ok((FtOutcome::Value(v), _)) => Observation::Value(v),
        Ok((FtOutcome::Halted(w), _)) => Observation::Value(FExpr::Int(match w {
            funtal_syntax::WordVal::Int(n) => n,
            _ => return Observation::Fault("non-integer halt".to_string()),
        })),
        Ok((FtOutcome::OutOfFuel, _)) => Observation::Timeout,
        Err(e) => Observation::Fault(e.to_string()),
    }
}

/// A witness that two components differ.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// A description of the distinguishing experiment (inputs/context).
    pub experiment: String,
    /// The first program's observation.
    pub lhs: Observation,
    /// The second program's observation.
    pub rhs: Observation,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "distinguished by {}: lhs ⇒ {}, rhs ⇒ {}",
            self.experiment, self.lhs, self.rhs
        )
    }
}

/// The verdict of a bounded equivalence check.
#[derive(Clone, Debug)]
pub enum Verdict {
    /// All experiments agreed (evidence of equivalence up to the fuel
    /// index, not a proof).
    NoDifferenceFound {
        /// Number of experiments performed.
        experiments: usize,
    },
    /// A genuine distinguishing experiment was found.
    Different(Box<Counterexample>),
}

impl Verdict {
    /// True when no difference was found.
    pub fn is_equiv(&self) -> bool {
        matches!(self, Verdict::NoDifferenceFound { .. })
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::NoDifferenceFound { experiments } => {
                write!(f, "no difference found ({experiments} experiments)")
            }
            Verdict::Different(c) => write!(f, "inequivalent: {c}"),
        }
    }
}

/// Configuration of the bounded relation.
#[derive(Clone, Copy, Debug)]
pub struct EquivCfg {
    /// Fuel per experiment (the step index `k`).
    pub fuel: u64,
    /// How many inputs to sample per function type.
    pub samples: usize,
    /// Depth budget for nested function types.
    pub depth: u32,
    /// RNG seed (experiments are deterministic given the seed).
    pub seed: u64,
}

impl Default for EquivCfg {
    fn default() -> Self {
        EquivCfg {
            fuel: 8_000,
            samples: 12,
            depth: 3,
            seed: 0xF00D,
        }
    }
}

/// Compares two observations, relating values with the bounded `V`
/// relation at `ty`. The counterexample is boxed — it is much larger
/// than the `Ok` path and flows straight into [`Verdict::Different`].
pub fn obs_rel(
    a: &Observation,
    b: &Observation,
    ty: &FTy,
    cfg: &EquivCfg,
    rng: &mut gen::SplitMix,
) -> Result<(), Box<Counterexample>> {
    match (a, b) {
        (Observation::Timeout, Observation::Timeout) => Ok(()),
        (Observation::Value(va), Observation::Value(vb)) => {
            if logrel::v_rel(va, vb, ty, cfg, rng, cfg.depth) {
                Ok(())
            } else {
                Err(Box::new(Counterexample {
                    experiment: format!("values differ at type {ty}"),
                    lhs: a.clone(),
                    rhs: b.clone(),
                }))
            }
        }
        _ => Err(Box::new(Counterexample {
            experiment: "observation class".to_string(),
            lhs: a.clone(),
            rhs: b.clone(),
        })),
    }
}

/// Bounded equivalence of two closed components at type `ty`
/// (the executable analogue of Theorem 5.2's `≈ctx`, one direction of
/// evidence only).
pub fn equivalent(e1: &FExpr, e2: &FExpr, ty: &FTy, cfg: &EquivCfg) -> Verdict {
    let mut rng = gen::SplitMix::new(cfg.seed);
    let mut experiments = 0;

    // Direct observation (E-relation at the empty context).
    match ty {
        FTy::Arrow { .. } => {}
        _ => {
            experiments += 1;
            let (oa, ob) = (observe(e1, cfg.fuel), observe(e2, cfg.fuel));
            if let Err(c) = obs_rel(&oa, &ob, ty, cfg, &mut rng) {
                return Verdict::Different(c);
            }
        }
    }

    // Applicative experiments for function types, plus generated
    // contexts for everything.
    for i in 0..cfg.samples {
        let ctx = gen::gen_context(ty, &mut rng, cfg.depth);
        let (p1, p2) = (ctx.plug(e1), ctx.plug(e2));
        experiments += 1;
        let (oa, ob) = (observe(&p1, cfg.fuel), observe(&p2, cfg.fuel));
        if let Err(mut c) = obs_rel(&oa, &ob, &ctx.result_ty, cfg, &mut rng) {
            c.experiment = format!("context #{i}: {} ({})", ctx.describe, c.experiment);
            return Verdict::Different(c);
        }
    }
    Verdict::NoDifferenceFound { experiments }
}

/// Contextual-equivalence testing: [`equivalent`] is the public entry
/// point; this alias emphasizes the `≈ctx` reading.
pub fn ctx_equiv(e1: &FExpr, e2: &FExpr, ty: &FTy, cfg: &EquivCfg) -> Verdict {
    equivalent(e1, e2, ty, cfg)
}

/// Structural alpha-equivalence shortcut (used by tests to confirm two
/// syntactically equal programs are trivially related).
pub fn syntactically_equal(a: &FExpr, b: &FExpr) -> bool {
    alpha_eq_fexpr(a, b)
}
