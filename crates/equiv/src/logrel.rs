//! The bounded logical relation: executable analogues of the paper's
//! `V⟦τ⟧` and `E⟦q ⊢ τ;σ⟧` (Figs 13–14), restricted to closed values
//! and the `out` marker.
//!
//! | paper | here |
//! |-------|------|
//! | `(W, v1, v2) ∈ V⟦τ⟧ρ` | [`v_rel`] with a fuel/depth budget in place of the world `W` |
//! | `(W, e1, e2) ∈ E⟦out ⊢ τ;σ⟧ρ` | [`e_rel`]: run both, compare observations, relate values |
//! | `(W, e1, e2) ∈ O` | both [`Observation`]s agree in class |
//!
//! Function values are related as in the paper: *given related inputs,
//! they produce related outputs* — with "all inputs in all future
//! worlds" replaced by a deterministic sample.

use funtal_syntax::{FExpr, FTy};

use crate::gen::{gen_value, SplitMix};
use crate::{observe, EquivCfg, Observation};

/// The bounded value relation `V⟦τ⟧`.
///
/// - `int`/`unit`: structural equality;
/// - tuples: pointwise;
/// - `µα.τ`: unfold one level (the depth budget plays the step index,
///   exactly the induction measure the paper uses for recursive types);
/// - arrows: apply both sides to the same sampled inputs and relate the
///   resulting computations with [`e_rel`].
pub fn v_rel(
    v1: &FExpr,
    v2: &FExpr,
    ty: &FTy,
    cfg: &EquivCfg,
    rng: &mut SplitMix,
    depth: u32,
) -> bool {
    match ty {
        FTy::Int | FTy::Unit => v1 == v2,
        FTy::Var(_) => v1 == v2,
        FTy::Tuple(ts) => match (v1, v2) {
            (FExpr::Tuple(xs), FExpr::Tuple(ys)) => {
                xs.len() == ts.len()
                    && ys.len() == ts.len()
                    && xs
                        .iter()
                        .zip(ys)
                        .zip(ts)
                        .all(|((a, b), t)| v_rel(a, b, t, cfg, rng, depth))
            }
            _ => false,
        },
        FTy::Rec(a, body) => {
            if depth == 0 {
                // Below the index: everything is related, as in a
                // step-indexed model at world 0.
                return true;
            }
            match (v1, v2) {
                (FExpr::Fold { body: b1, .. }, FExpr::Fold { body: b2, .. }) => {
                    let unrolled = funtal_fun::check::subst_fty_var(body, a, ty);
                    v_rel(b1, b2, &unrolled, cfg, rng, depth - 1)
                }
                _ => false,
            }
        }
        FTy::Arrow {
            params,
            phi_in,
            phi_out,
            ret,
        } => {
            if !phi_in.is_empty() || !phi_out.is_empty() {
                // Stack-modifying functions cannot be applied on an
                // empty ambient stack; callers compare them in richer
                // harness programs. Fall back to syntactic equality.
                return funtal_syntax::alpha::alpha_eq_fexpr(v1, v2);
            }
            if depth == 0 {
                return true;
            }
            for _ in 0..cfg.samples.max(1) {
                let args: Vec<FExpr> = params
                    .iter()
                    .map(|t| gen_value(t, rng, depth - 1))
                    .collect();
                let a1 = FExpr::app(v1.clone(), args.clone());
                let a2 = FExpr::app(v2.clone(), args);
                if !e_rel(&a1, &a2, ret, cfg, rng, depth - 1) {
                    return false;
                }
            }
            true
        }
    }
}

/// The bounded expression relation `E⟦out ⊢ τ⟧`: run both sides and
/// compare observations, relating terminal values with [`v_rel`].
pub fn e_rel(
    e1: &FExpr,
    e2: &FExpr,
    ty: &FTy,
    cfg: &EquivCfg,
    rng: &mut SplitMix,
    depth: u32,
) -> bool {
    let (o1, o2) = (observe(e1, cfg.fuel), observe(e2, cfg.fuel));
    match (o1, o2) {
        (Observation::Timeout, Observation::Timeout) => true,
        (Observation::Value(v1), Observation::Value(v2)) => v_rel(&v1, &v2, ty, cfg, rng, depth),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funtal_syntax::build::*;

    fn cfg() -> EquivCfg {
        EquivCfg {
            fuel: 10_000,
            samples: 6,
            depth: 2,
            seed: 11,
        }
    }

    #[test]
    fn base_values() {
        let c = cfg();
        let mut rng = SplitMix::new(c.seed);
        assert!(v_rel(&fint_e(3), &fint_e(3), &fint(), &c, &mut rng, 2));
        assert!(!v_rel(&fint_e(3), &fint_e(4), &fint(), &c, &mut rng, 2));
        assert!(v_rel(&funit_e(), &funit_e(), &funit(), &c, &mut rng, 2));
    }

    #[test]
    fn tuples_pointwise() {
        let c = cfg();
        let mut rng = SplitMix::new(c.seed);
        let t = ftuple_ty(vec![fint(), funit()]);
        assert!(v_rel(
            &ftuple(vec![fint_e(1), funit_e()]),
            &ftuple(vec![fint_e(1), funit_e()]),
            &t,
            &c,
            &mut rng,
            2
        ));
        assert!(!v_rel(
            &ftuple(vec![fint_e(1), funit_e()]),
            &ftuple(vec![fint_e(2), funit_e()]),
            &t,
            &c,
            &mut rng,
            2
        ));
    }

    #[test]
    fn extensionally_equal_lambdas_related() {
        let c = cfg();
        let mut rng = SplitMix::new(c.seed);
        let f1 = lam(vec![("x", fint())], fmul(var("x"), fint_e(2)));
        let f2 = lam(vec![("x", fint())], fadd(var("x"), var("x")));
        assert!(v_rel(
            &f1,
            &f2,
            &arrow(vec![fint()], fint()),
            &c,
            &mut rng,
            2
        ));
    }

    #[test]
    fn different_lambdas_unrelated() {
        let c = cfg();
        let mut rng = SplitMix::new(c.seed);
        let f1 = lam(vec![("x", fint())], fmul(var("x"), fint_e(2)));
        let f2 = lam(vec![("x", fint())], fmul(var("x"), fint_e(3)));
        assert!(!v_rel(
            &f1,
            &f2,
            &arrow(vec![fint()], fint()),
            &c,
            &mut rng,
            2
        ));
    }

    #[test]
    fn higher_order_distinction() {
        // λg. g 0  vs  λg. g 1 — distinguished by a generated g that
        // inspects its argument.
        let c = cfg();
        let mut rng = SplitMix::new(c.seed);
        let hot = arrow(vec![arrow(vec![fint()], fint())], fint());
        let f1 = lam(
            vec![("g", arrow(vec![fint()], fint()))],
            app(var("g"), vec![fint_e(0)]),
        );
        let f2 = lam(
            vec![("g", arrow(vec![fint()], fint()))],
            app(var("g"), vec![fint_e(1)]),
        );
        assert!(!v_rel(&f1, &f2, &hot, &c, &mut rng, 3));
    }
}
