//! E9/E10: the paper's §5.1 example equivalences, checked with the
//! bounded relation, plus negative controls (mutated variants must be
//! distinguished).

use funtal::figures::*;
use funtal_equiv::{equivalent, EquivCfg, Verdict};
use funtal_syntax::build::*;

fn cfg() -> EquivCfg {
    EquivCfg {
        fuel: 20_000,
        samples: 10,
        depth: 2,
        seed: 2024,
    }
}

#[test]
fn fig16_one_block_equals_two_blocks() {
    let v = equivalent(
        &fig16_f1(),
        &fig16_f2(),
        &arrow(vec![fint()], fint()),
        &cfg(),
    );
    assert!(v.is_equiv(), "{v}");
}

#[test]
fn fig16_negative_control() {
    // f1 against a variant that adds 3: must be distinguished.
    let f3 = lam(vec![("x", fint())], fadd(var("x"), fint_e(3)));
    let v = equivalent(&fig16_f1(), &f3, &arrow(vec![fint()], fint()), &cfg());
    assert!(!v.is_equiv());
    if let Verdict::Different(c) = v {
        assert!(c.experiment.contains("apply"), "{c}");
    }
}

#[test]
fn fig17_functional_equals_imperative_factorial() {
    // The headline equivalence: recursive F factorial vs imperative T
    // factorial. Negative inputs make both diverge; the generator's
    // input range includes them, and Timeout relates to Timeout.
    let v = equivalent(
        &fig17_fact_f(),
        &fig17_fact_t(),
        &arrow(vec![fint()], fint()),
        &EquivCfg {
            fuel: 4_000,
            samples: 8,
            depth: 2,
            seed: 99,
        },
    );
    assert!(v.is_equiv(), "{v}");
}

#[test]
fn fig17_negative_control() {
    // factT against an off-by-one variant (initial accumulator 2).
    let bad = lam(
        vec![("x", fint())],
        if0(var("x"), fint_e(2), fmul(var("x"), var("x"))),
    );
    let v = equivalent(
        &fig17_fact_f(),
        &bad,
        &arrow(vec![fint()], fint()),
        &EquivCfg {
            fuel: 4_000,
            samples: 8,
            depth: 2,
            seed: 99,
        },
    );
    assert!(!v.is_equiv());
}

#[test]
fn pure_f_vs_mixed_equivalence() {
    // A pure F "add two" against the mixed f1 of Fig 16 — equivalence
    // across languages, the multi-language point of the paper.
    let pure = lam(vec![("x", fint())], fadd(var("x"), fint_e(2)));
    let v = equivalent(&pure, &fig16_f1(), &arrow(vec![fint()], fint()), &cfg());
    assert!(v.is_equiv(), "{v}");
}

#[test]
fn base_type_equivalence_and_difference() {
    let a = fadd(fint_e(40), fint_e(2));
    let b = fmul(fint_e(6), fint_e(7));
    let v = equivalent(&a, &b, &fint(), &cfg());
    assert!(v.is_equiv(), "{v}");
    let c = fint_e(41);
    assert!(!equivalent(&a, &c, &fint(), &cfg()).is_equiv());
}

#[test]
fn divergence_relates_to_divergence() {
    // Ω at int (via recursive self-application) relates to a T-level
    // infinite loop wrapped at int.
    let mu_ty = fmu("a", arrow(vec![fvar_ty("a")], fint()));
    let w = lam_z(
        vec![("f", mu_ty.clone())],
        "zw",
        app(funfold(var("f")), vec![var("f")]),
    );
    let omega = app(w.clone(), vec![ffold(mu_ty, w)]);

    let spin = boundary(
        fint(),
        tcomp(
            seq(vec![], jmp(loc("spin"))),
            vec![(
                "spin",
                code_block(
                    vec![],
                    chi([]),
                    nil(),
                    q_end(int(), nil()),
                    seq(vec![], jmp(loc("spin"))),
                ),
            )],
        ),
    );
    let v = equivalent(
        &omega,
        &spin,
        &fint(),
        &EquivCfg {
            fuel: 2_000,
            samples: 2,
            depth: 1,
            seed: 5,
        },
    );
    assert!(v.is_equiv(), "{v}");
}
