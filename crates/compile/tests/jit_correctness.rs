//! E12: compiler correctness in the paper's §6 form — for every JIT
//! replacement move, the source and its compiled version must be
//! contextually equivalent: `eS ≈ E[ℱ𝒯 eT]`.
//!
//! Checked with the bounded logical relation of `funtal-equiv`, plus a
//! property-based sweep over randomly generated MiniF programs
//! comparing every configuration against the reference interpreter.

use std::collections::BTreeMap;

use funtal_compile::codegen::{compile_program, CodegenOpts};
use funtal_compile::femit::def_to_fexpr;
use funtal_compile::lang::{factorial_program, fib_program, Def, MExpr, Program};
use funtal_equiv::{equivalent, EquivCfg};
use funtal_syntax::build::*;
use funtal_syntax::ArithOp;
use proptest::prelude::*;

// Note: divergent *interpreted* runs cost O(fuel^2) (the redex context
// grows each step), so the step index is kept small; every convergent
// sample terminates well within it.
fn cfg() -> EquivCfg {
    EquivCfg {
        fuel: 1_500,
        samples: 5,
        depth: 2,
        seed: 7,
    }
}

#[test]
fn compiled_factorial_equiv_interpreted() {
    let p = factorial_program();
    let interpreted = def_to_fexpr(&p.defs["fact"], &BTreeMap::new());
    for opts in [
        CodegenOpts {
            tail_call_opt: false,
        },
        CodegenOpts {
            tail_call_opt: true,
        },
    ] {
        let compiled = compile_program(&p, opts).wrap("fact");
        let v = equivalent(
            &interpreted,
            &compiled,
            &arrow(vec![fint()], fint()),
            &cfg(),
        );
        assert!(v.is_equiv(), "{opts:?}: {v}");
    }
}

#[test]
fn tail_call_ablation_is_semantics_preserving() {
    // The two codegen configurations must be equivalent to each other.
    let p = factorial_program();
    let plain = compile_program(
        &p,
        CodegenOpts {
            tail_call_opt: false,
        },
    )
    .wrap("fact");
    let looped = compile_program(
        &p,
        CodegenOpts {
            tail_call_opt: true,
        },
    )
    .wrap("fact");
    let v = equivalent(&plain, &looped, &arrow(vec![fint()], fint()), &cfg());
    assert!(v.is_equiv(), "{v}");
}

#[test]
fn mixed_configuration_equiv() {
    // double_fib interpreted, fib compiled — a genuinely mixed
    // configuration (F code applying a boundary-wrapped component).
    let p = fib_program();
    let compiled = compile_program(
        &p,
        CodegenOpts {
            tail_call_opt: true,
        },
    );
    let mut mat = BTreeMap::new();
    mat.insert("fib".to_string(), compiled.wrap("fib"));
    let mixed = def_to_fexpr(&p.defs["double_fib"], &mat);

    let mut mat2 = BTreeMap::new();
    mat2.insert(
        "fib".to_string(),
        def_to_fexpr(&p.defs["fib"], &BTreeMap::new()),
    );
    let pure = def_to_fexpr(&p.defs["double_fib"], &mat2);

    let v = equivalent(
        &pure,
        &mixed,
        &arrow(vec![fint()], fint()),
        &EquivCfg {
            fuel: 2_000,
            samples: 4,
            depth: 2,
            seed: 13,
        },
    );
    assert!(v.is_equiv(), "{v}");
}

#[test]
fn jit_ladder_is_observably_equivalent_across_tiers() {
    use funtal_compile::jit::{Jit, Mode};
    // Threshold 1: the three invocations climb the whole ladder —
    // interpreted, compiled, bytecode — over the same call.
    let mut jit = Jit::new(
        fib_program(),
        1,
        CodegenOpts {
            tail_call_opt: true,
        },
    );
    let s1 = jit.invoke("fib", &[10], 5_000_000).unwrap();
    let s2 = jit.invoke("fib", &[10], 5_000_000).unwrap();
    let s3 = jit.invoke("fib", &[10], 5_000_000).unwrap();
    assert_eq!(s1.mode, Mode::Interpreted);
    assert_eq!(s2.mode, Mode::Compiled);
    assert_eq!(s3.mode, Mode::Bytecode);
    // Every rung computes the same value.
    assert_eq!(s1.result, s2.result);
    assert_eq!(s2.result, s3.result);
    // Compiled and bytecode share a configuration, so the tier switch
    // must be invisible in the step accounting too.
    assert_eq!(
        (s2.t_instrs, s2.f_steps, s2.crossings),
        (s3.t_instrs, s3.f_steps, s3.crossings),
        "bytecode tier changed observable step counts"
    );
}

// --- property-based sweep over random MiniF programs -----------------------

/// Generates a random call-free or self-recursive MiniF body over `n`
/// parameters. Recursive calls always shrink the first parameter and
/// guard on it, so generated programs terminate on small non-negative
/// inputs.
fn arb_body(n_params: usize, depth: u32) -> BoxedStrategy<MExpr> {
    let params: Vec<String> = (0..n_params).map(|i| format!("p{i}")).collect();
    let leaf = {
        let params = params.clone();
        prop_oneof![
            (-9i64..10).prop_map(MExpr::Int),
            (0..n_params).prop_map(move |i| MExpr::Var(params[i].clone())),
        ]
    };
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = arb_body(n_params, depth - 1);
    prop_oneof![
        leaf,
        (
            sub.clone(),
            sub.clone(),
            prop_oneof![Just(ArithOp::Add), Just(ArithOp::Sub), Just(ArithOp::Mul)]
        )
            .prop_map(|(a, b, op)| MExpr::bin(op, a, b)),
        (sub.clone(), sub.clone(), sub.clone()).prop_map(|(c, t, e)| MExpr::if0(c, t, e)),
    ]
    .boxed()
}

/// Wraps a generated body in a guarded self-recursive skeleton:
/// `f(p0, …) = if0 p0 { body } { f(p0 − 1, body…) + 1 }`.
fn arb_program() -> impl Strategy<Value = Program> {
    (1usize..3, arb_body(2, 3)).prop_map(|(extra, body)| {
        let n = 1 + extra.min(1); // 1 or 2 params
        let body2 = clamp_params(&body, n);
        let rec = MExpr::bin(
            ArithOp::Add,
            MExpr::call(
                "f",
                (0..n)
                    .map(|i| {
                        if i == 0 {
                            MExpr::bin(ArithOp::Sub, MExpr::v("p0"), MExpr::i(1))
                        } else {
                            MExpr::v(&format!("p{i}"))
                        }
                    })
                    .collect(),
            ),
            MExpr::i(1),
        );
        let full = MExpr::if0(MExpr::v("p0"), body2, rec);
        let names: Vec<String> = (0..n).map(|i| format!("p{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        Program::new([Def::new("f", &name_refs, full)]).expect("generated program valid")
    })
}

/// Rewrites parameter references above the arity down into range.
fn clamp_params(e: &MExpr, n: usize) -> MExpr {
    match e {
        MExpr::Var(x) => {
            let idx: usize = x.trim_start_matches('p').parse().unwrap_or(0);
            MExpr::v(&format!("p{}", idx % n))
        }
        MExpr::Int(k) => MExpr::Int(*k),
        MExpr::Binop { op, lhs, rhs } => {
            MExpr::bin(*op, clamp_params(lhs, n), clamp_params(rhs, n))
        }
        MExpr::If0 {
            cond,
            then_branch,
            else_branch,
        } => MExpr::if0(
            clamp_params(cond, n),
            clamp_params(then_branch, n),
            clamp_params(else_branch, n),
        ),
        MExpr::Call { callee, args } => MExpr::Call {
            callee: callee.clone(),
            args: args.iter().map(|a| clamp_params(a, n)).collect(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn compiled_agrees_with_reference(p in arb_program(), x in 0i64..6) {
        let def = &p.defs["f"];
        let n = def.params.len();
        let args: Vec<i64> = (0..n).map(|i| if i == 0 { x } else { x + 1 }).collect();
        let expected = p.eval("f", &args, 64).expect("guarded recursion terminates");

        for opts in [CodegenOpts { tail_call_opt: false }, CodegenOpts { tail_call_opt: true }] {
            let compiled = compile_program(&p, opts).wrap("f");
            let call = app(compiled, args.iter().map(|v| fint_e(*v)).collect());
            let got = funtal::machine::eval_to_value(&call, 5_000_000)
                .expect("compiled program runs");
            prop_assert_eq!(&got, &fint_e(expected), "{:?}", opts);

            // The bytecode tier computes the same value with the same
            // step counts as the environment machine.
            use funtal::machine::{run_fexpr_threaded, EvalStrategy, FtOutcome, RunCfg};
            use funtal_tal::trace::CountTracer;
            let (env_out, env_tr) =
                run_fexpr_threaded(&call, RunCfg::with_fuel(5_000_000), CountTracer::new())
                    .expect("environment run");
            let (bc_out, bc_tr) = run_fexpr_threaded(
                &call,
                RunCfg::with_fuel(5_000_000).with_strategy(EvalStrategy::Bytecode),
                CountTracer::new(),
            )
            .expect("bytecode run");
            prop_assert_eq!(&bc_out, &FtOutcome::Value(fint_e(expected)), "{:?}", opts);
            prop_assert_eq!(&bc_out, &env_out);
            prop_assert_eq!(
                (bc_tr.instrs, bc_tr.f_steps, bc_tr.crossings, bc_tr.transfers),
                (env_tr.instrs, env_tr.f_steps, env_tr.crossings, env_tr.transfers),
                "{:?}", opts
            );
        }

        // The interpreted F encoding agrees too.
        let interp = def_to_fexpr(def, &BTreeMap::new());
        let call = app(interp, args.iter().map(|v| fint_e(*v)).collect());
        let got = funtal::machine::eval_to_value(&call, 5_000_000)
            .expect("interpreted program runs");
        prop_assert_eq!(&got, &fint_e(expected));
    }
}
