//! Binary codecs for MiniF compilation artifacts (the persistent
//! store's `compile` stage): the surface [`Program`] and the generated
//! [`Compiled`] heap.
//!
//! Decoded [`Program`]s are re-validated ([`Program::validate`]) so a
//! structurally well-formed but semantically stale entry (e.g. a call
//! to a definition that no longer exists) rejects instead of
//! resurfacing downstream.

use funtal_store::{Reader, Wire, WireError, Writer};

use crate::codegen::Compiled;
use crate::lang::{Def, MExpr, Program};

impl Wire for MExpr {
    fn encode(&self, w: &mut Writer) {
        match self {
            MExpr::Var(name) => {
                w.u8(0);
                name.encode(w);
            }
            MExpr::Int(n) => {
                w.u8(1);
                w.i64(*n);
            }
            MExpr::Binop { op, lhs, rhs } => {
                w.u8(2);
                op.encode(w);
                lhs.encode(w);
                rhs.encode(w);
            }
            MExpr::If0 {
                cond,
                then_branch,
                else_branch,
            } => {
                w.u8(3);
                cond.encode(w);
                then_branch.encode(w);
                else_branch.encode(w);
            }
            MExpr::Call { callee, args } => {
                w.u8(4);
                callee.encode(w);
                args.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(MExpr::Var(String::decode(r)?)),
            1 => Ok(MExpr::Int(r.i64()?)),
            2 => Ok(MExpr::Binop {
                op: Wire::decode(r)?,
                lhs: Wire::decode(r)?,
                rhs: Wire::decode(r)?,
            }),
            3 => Ok(MExpr::If0 {
                cond: Wire::decode(r)?,
                then_branch: Wire::decode(r)?,
                else_branch: Wire::decode(r)?,
            }),
            4 => Ok(MExpr::Call {
                callee: String::decode(r)?,
                args: Wire::decode(r)?,
            }),
            tag => Err(WireError::BadTag { what: "MExpr", tag }),
        }
    }
}

impl Wire for Def {
    fn encode(&self, w: &mut Writer) {
        self.name.encode(w);
        self.params.encode(w);
        self.body.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Def {
            name: String::decode(r)?,
            params: Wire::decode(r)?,
            body: MExpr::decode(r)?,
        })
    }
}

impl Wire for Program {
    fn encode(&self, w: &mut Writer) {
        self.defs.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let p = Program {
            defs: Wire::decode(r)?,
        };
        p.validate().map_err(|_| WireError::Invalid {
            what: "decoded MiniF program fails validation",
        })?;
        Ok(p)
    }
}

impl Wire for Compiled {
    fn encode(&self, w: &mut Writer) {
        self.heap.encode(w);
        self.entries.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Compiled {
            heap: Wire::decode(r)?,
            entries: Wire::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codegen::{compile_program, CodegenOpts};
    use funtal_store::{decode_from_slice, encode_to_vec};
    use funtal_syntax::ArithOp;

    /// `def fact(n) = if0 n then 1 else n * fact(n - 1)`, built directly
    /// (the MiniF concrete-syntax parser lives in the driver crate).
    fn fact_program() -> Program {
        let body = MExpr::If0 {
            cond: Box::new(MExpr::Var("n".into())),
            then_branch: Box::new(MExpr::Int(1)),
            else_branch: Box::new(MExpr::Binop {
                op: ArithOp::Mul,
                lhs: Box::new(MExpr::Var("n".into())),
                rhs: Box::new(MExpr::Call {
                    callee: "fact".into(),
                    args: vec![MExpr::Binop {
                        op: ArithOp::Sub,
                        lhs: Box::new(MExpr::Var("n".into())),
                        rhs: Box::new(MExpr::Int(1)),
                    }],
                }),
            }),
        };
        let def = Def {
            name: "fact".into(),
            params: vec!["n".into()],
            body,
        };
        Program {
            defs: [("fact".to_owned(), def)].into_iter().collect(),
        }
    }

    #[test]
    fn program_round_trips() {
        let p = fact_program();
        let bytes = encode_to_vec(&p);
        let back: Program = decode_from_slice(&bytes).expect("decode");
        assert_eq!(p, back);
    }

    #[test]
    fn compiled_round_trips_for_both_tco_modes() {
        let p = fact_program();
        for tco in [false, true] {
            let compiled = compile_program(&p, CodegenOpts { tail_call_opt: tco });
            let bytes = encode_to_vec(&compiled);
            let back: Compiled = decode_from_slice(&bytes).expect("decode");
            assert_eq!(back.entries, compiled.entries);
            assert_eq!(back.heap.len(), compiled.heap.len());
            for ((l1, v1), (l2, v2)) in compiled.heap.iter().zip(back.heap.iter()) {
                assert_eq!(l1, l2);
                assert_eq!(**v1, **v2);
            }
        }
    }

    #[test]
    fn invalid_decoded_program_rejects() {
        // A program whose body calls an undefined function encodes
        // fine but must fail decode-time validation.
        let p = Program {
            defs: [(
                "f".to_owned(),
                Def {
                    name: "f".to_owned(),
                    params: vec![],
                    body: MExpr::Call {
                        callee: "missing".to_owned(),
                        args: vec![],
                    },
                },
            )]
            .into_iter()
            .collect(),
        };
        let bytes = encode_to_vec(&p);
        assert!(decode_from_slice::<Program>(&bytes).is_err());
    }
}
