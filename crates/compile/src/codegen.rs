//! The MiniF → T compiler.
//!
//! Each definition `f(x̄) = e` compiles to a family of code blocks whose
//! entry block has exactly the Fig 9 translation type of
//! `(int, …, int) → int`:
//!
//! ```text
//! f : code[ζ: stk, ε: ret]{ra: box ∀[].{r1: int; ζ} ε; intⁿ :: ζ} ra
//! ```
//!
//! so compiled functions flow through boundaries as F values — the JIT
//! replacement move of the paper's §6.
//!
//! ## Compilation scheme
//!
//! A stack machine: temporaries live on the stack, results in `r1`,
//! `r2` is scratch. Non-leaf functions spill the return continuation to
//! the stack in a prologue block (`salloc 1; sst 0, ra; jmp body`),
//! moving the return marker to a stack slot so that `call` is legal
//! (Fig 2 has no call rule for register markers). During compilation
//! the static state is the temp depth `k`; the stack typing is always
//!
//! ```text
//! int^k :: cont? :: intⁿ :: ζ        (cont present iff non-leaf)
//! ```
//!
//! - `if0` splits blocks (`bnz` to the else block, fall-through then,
//!   both jumping to a join block expecting the result in `r1`);
//! - calls protect everything below the pushed arguments and resume in
//!   a fresh return block whose marker is the saved continuation's
//!   slot (`call g {σ0, k₀}` — the Fig 2 marker arithmetic
//!   `i + k − j` appears here as `(k₀+nargs) + 0 − nargs = k₀`);
//! - with [`CodegenOpts::tail_call_opt`], self tail calls overwrite the
//!   argument slots and jump back to a loop header — compiling Fig 17's
//!   `factF` into exactly the loop shape of `factT`.

use std::collections::BTreeMap;
use std::sync::Arc;

use funtal_syntax::build as b;
use funtal_syntax::{
    CodeBlock, FExpr, HeapVal, Instr, InstrSeq, Label, RetMarker, SmallVal, StackTail, StackTy,
    TComp, TTy, Terminator, TyVar,
};

use crate::lang::{Def, MExpr, Program};

/// Code generation options.
#[derive(Clone, Copy, Debug, Default)]
pub struct CodegenOpts {
    /// Rewrite self tail calls into jumps to a loop header.
    pub tail_call_opt: bool,
}

/// The result of compiling a whole program: one heap fragment holding
/// every definition's blocks.
///
/// Blocks are emitted behind [`Arc`] so that every [`Compiled::wrap`]
/// call — and every boundary crossing of the wrapped component at
/// runtime — shares the same instruction sequences instead of
/// re-allocating them per call.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// All generated blocks, shared.
    pub heap: Vec<(Label, Arc<HeapVal>)>,
    /// Entry label and arity per definition.
    pub entries: BTreeMap<String, (Label, usize)>,
}

impl Compiled {
    /// Wraps a compiled definition as an F expression: a boundary that
    /// evaluates to the code pointer (the Fig 10 value translation turns
    /// it into a wrapper lambda when it crosses into F).
    pub fn wrap(&self, name: &str) -> FExpr {
        let (label, arity) = &self.entries[name];
        let aty = b::arrow(vec![b::fint(); *arity], b::fint());
        let t_aty = funtal::fty_to_tty(&aty);
        let zp = format!("zp_{name}");
        FExpr::Boundary {
            ty: aty,
            sigma_out: None,
            comp: Box::new(TComp {
                seq: InstrSeq::new(
                    vec![
                        b::protect(vec![], &zp),
                        b::mv(b::r1(), b::loc(label.as_str())),
                    ],
                    Terminator::Halt {
                        ty: t_aty,
                        sigma: StackTy::var(zp.as_str()),
                        val: b::r1(),
                    },
                ),
                heap: self.heap.iter().cloned().collect(),
            }),
        }
    }

    /// Total number of generated blocks.
    pub fn block_count(&self) -> usize {
        self.heap.len()
    }
}

/// Compiles every definition of a program into one heap fragment.
pub fn compile_program(p: &Program, opts: CodegenOpts) -> Compiled {
    let mut heap = Vec::new();
    let mut entries = BTreeMap::new();
    for def in p.defs.values() {
        entries.insert(
            def.name.clone(),
            (Label::new(def.name.as_str()), def.params.len()),
        );
        heap.extend(
            compile_def(def, opts)
                .into_iter()
                .map(|(l, hv)| (l, Arc::new(hv))),
        );
    }
    Compiled { heap, entries }
}

/// The continuation type `box ∀[].{r1: int; ζ} ε`.
fn cont_ty() -> TTy {
    b::code_ty(
        vec![],
        b::chi([(b::r1(), b::int())]),
        b::zvar("z"),
        b::q_var("e"),
    )
}

/// `[stk(ζ), ret(ε)]` — the standard intra-function instantiation.
fn std_insts() -> Vec<funtal_syntax::Inst> {
    vec![b::i_stk(b::zvar("z")), b::i_ret(b::q_var("e"))]
}

fn jump_to(label: &str) -> Terminator {
    Terminator::Jmp(SmallVal::loc(label).instantiate(std_insts()))
}

/// Whether compilation of an expression fell through (result in `r1`)
/// or terminated the current block (a rewritten tail call).
#[derive(Clone, Copy, PartialEq, Debug)]
enum Flow {
    FallThrough,
    Diverted,
}

struct OpenBlock {
    label: Label,
    chi: funtal_syntax::RegFileTy,
    instrs: Vec<Instr>,
    entry_k: usize,
}

struct Builder<'d> {
    def: &'d Def,
    opts: CodegenOpts,
    nonleaf: bool,
    n: usize,
    k: usize,
    counter: usize,
    blocks: Vec<(Label, CodeBlock)>,
    current: Option<OpenBlock>,
}

impl<'d> Builder<'d> {
    fn new(def: &'d Def, opts: CodegenOpts) -> Self {
        Builder {
            def,
            opts,
            nonleaf: !def.body.is_call_free(),
            n: def.params.len(),
            k: 0,
            counter: 0,
            blocks: Vec::new(),
            current: None,
        }
    }

    /// The stack typing at temp depth `k`.
    fn sigma_at(&self, k: usize) -> StackTy {
        let mut prefix = vec![b::int(); k];
        if self.nonleaf {
            prefix.push(cont_ty());
        }
        prefix.extend(std::iter::repeat_n(b::int(), self.n));
        StackTy {
            prefix,
            tail: StackTail::Var(TyVar::new("z")),
        }
    }

    /// The return marker at temp depth `k`.
    fn q_at(&self, k: usize) -> RetMarker {
        if self.nonleaf {
            RetMarker::Stack(k)
        } else {
            RetMarker::Reg(b::ra())
        }
    }

    /// Base register-file typing for generated blocks.
    fn base_chi(&self) -> Vec<(funtal_syntax::Reg, TTy)> {
        if self.nonleaf {
            vec![]
        } else {
            vec![(b::ra(), cont_ty())]
        }
    }

    /// The stack slot of parameter `x` at the current depth.
    fn slot_of(&self, x: &str) -> usize {
        let idx = self
            .def
            .params
            .iter()
            .position(|p| p == x)
            .expect("validated variable");
        self.k + usize::from(self.nonleaf) + (self.n - 1 - idx)
    }

    fn fresh_label(&mut self, hint: &str) -> Label {
        self.counter += 1;
        Label::new(format!("{}_{hint}{}", self.def.name, self.counter))
    }

    fn emit(&mut self, i: Instr) {
        self.current.as_mut().expect("open block").instrs.push(i);
    }

    fn start_block(&mut self, label: Label, extra_chi: Vec<(funtal_syntax::Reg, TTy)>) {
        assert!(self.current.is_none(), "previous block not finished");
        let mut pairs = self.base_chi();
        pairs.extend(extra_chi);
        self.current = Some(OpenBlock {
            label,
            chi: b::chi(pairs),
            instrs: Vec::new(),
            entry_k: self.k,
        });
    }

    fn finish_block(&mut self, term: Terminator) {
        let open = self.current.take().expect("open block");
        let block = CodeBlock {
            delta: vec![b::d_stk("z"), b::d_ret("e")],
            chi: open.chi,
            sigma: self.sigma_at(open.entry_k),
            q: self.q_at(open.entry_k),
            body: InstrSeq::new(open.instrs, term),
        };
        self.blocks.push((open.label, block));
    }

    fn push_temp(&mut self) {
        self.emit(b::salloc(1));
        self.emit(b::sst(0, b::r1()));
        self.k += 1;
    }

    fn pop_temp_into_r2(&mut self) {
        self.emit(b::sld(b::r2(), 0));
        self.emit(b::sfree(1));
        self.k -= 1;
    }

    /// Compiles `e`, leaving the result in `r1` on fall-through.
    fn expr(&mut self, e: &MExpr, tail: bool) -> Flow {
        match e {
            MExpr::Var(x) => {
                let slot = self.slot_of(x);
                self.emit(b::sld(b::r1(), slot));
                Flow::FallThrough
            }
            MExpr::Int(n) => {
                self.emit(b::mv(b::r1(), b::int_v(*n)));
                Flow::FallThrough
            }
            MExpr::Binop { op, lhs, rhs } => {
                self.expr(lhs, false);
                self.push_temp();
                self.expr(rhs, false);
                self.pop_temp_into_r2();
                self.emit(Instr::Arith {
                    op: *op,
                    rd: b::r1(),
                    rs: b::r2(),
                    src: b::reg(b::r1()),
                });
                Flow::FallThrough
            }
            MExpr::If0 {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expr(cond, false);
                let else_l = self.fresh_label("else");
                let join_l = self.fresh_label("join");
                let entry_k = self.k;
                self.emit(b::bnz(
                    b::r1(),
                    SmallVal::loc(else_l.as_str()).instantiate(std_insts()),
                ));
                // then branch (fall-through path of bnz).
                let tf = self.expr(then_branch, tail);
                if tf == Flow::FallThrough {
                    debug_assert_eq!(self.k, entry_k);
                    self.finish_block(jump_to(join_l.as_str()));
                }
                // else branch.
                self.k = entry_k;
                self.start_block(else_l, vec![]);
                let ef = self.expr(else_branch, tail);
                if ef == Flow::FallThrough {
                    debug_assert_eq!(self.k, entry_k);
                    self.finish_block(jump_to(join_l.as_str()));
                }
                if tf == Flow::Diverted && ef == Flow::Diverted {
                    return Flow::Diverted;
                }
                self.k = entry_k;
                self.start_block(join_l, vec![(b::r1(), b::int())]);
                Flow::FallThrough
            }
            MExpr::Call { callee, args } => {
                let is_self_tail =
                    tail && self.opts.tail_call_opt && *callee == self.def.name && self.nonleaf;
                let k0 = self.k;
                for a in args {
                    self.expr(a, false);
                    self.push_temp();
                }
                let nargs = args.len();
                if is_self_tail {
                    // Overwrite the old argument slots with the freshly
                    // computed ones, drop all temporaries, and jump to
                    // the loop header.
                    for i in 1..=nargs {
                        let from = nargs - i;
                        let to = (k0 + nargs) + 1 + (self.n - i);
                        self.emit(b::sld(b::r1(), from));
                        self.emit(b::sst(to, b::r1()));
                    }
                    self.emit(b::sfree(nargs + k0));
                    self.finish_block(jump_to(&format!("{}_loop", self.def.name)));
                    self.k = k0;
                    return Flow::Diverted;
                }
                // Generic call: install the return block's address and
                // transfer; resume in the return block at depth k0.
                let ret_l = self.fresh_label("ret");
                self.emit(b::mv(
                    b::ra(),
                    SmallVal::loc(ret_l.as_str()).instantiate(std_insts()),
                ));
                let protected = self.sigma_at(k0);
                self.finish_block(Terminator::Call {
                    target: SmallVal::loc(callee.as_str()),
                    sigma: protected,
                    q: RetMarker::Stack(k0),
                });
                self.k = k0;
                self.start_block(ret_l, vec![(b::r1(), b::int())]);
                Flow::FallThrough
            }
        }
    }
}

/// Compiles one definition into blocks (entry block named after the
/// definition).
pub fn compile_def(def: &Def, opts: CodegenOpts) -> Vec<(Label, HeapVal)> {
    let mut bld = Builder::new(def, opts);
    let n = bld.n;
    let entry_label = Label::new(def.name.as_str());

    if bld.nonleaf {
        // Entry block: spill ra (the prologue), jump to the body block.
        // Its σ/q describe the *pre-prologue* state, so it is built by
        // hand.
        let body_label = if opts.tail_call_opt && has_self_tail(&def.body, &def.name, true) {
            format!("{}_loop", def.name)
        } else {
            format!("{}_body", def.name)
        };
        let entry_block = CodeBlock {
            delta: vec![b::d_stk("z"), b::d_ret("e")],
            chi: b::chi([(b::ra(), cont_ty())]),
            sigma: StackTy {
                prefix: vec![b::int(); n],
                tail: StackTail::Var(TyVar::new("z")),
            },
            q: RetMarker::Reg(b::ra()),
            body: InstrSeq::new(vec![b::salloc(1), b::sst(0, b::ra())], jump_to(&body_label)),
        };
        bld.blocks.push((entry_label, entry_block));
        bld.start_block(Label::new(body_label), vec![]);
    } else {
        bld.start_block(entry_label, vec![]);
    }

    let flow = bld.expr(&def.body, true);
    if flow == Flow::FallThrough {
        debug_assert_eq!(bld.k, 0);
        if bld.nonleaf {
            bld.emit(b::sld(b::ra(), 0));
            bld.emit(b::sfree(1 + n));
        } else {
            bld.emit(b::sfree(n));
        }
        bld.finish_block(Terminator::Ret {
            target: b::ra(),
            val: b::r1(),
        });
    } else {
        debug_assert!(bld.current.is_none(), "diverted flow leaves no open block");
    }

    bld.blocks
        .into_iter()
        .map(|(l, blk)| (l, HeapVal::Code(blk)))
        .collect()
}

fn has_self_tail(e: &MExpr, name: &str, tail: bool) -> bool {
    match e {
        MExpr::Var(_) | MExpr::Int(_) => false,
        MExpr::Binop { lhs, rhs, .. } => {
            has_self_tail(lhs, name, false) || has_self_tail(rhs, name, false)
        }
        MExpr::If0 {
            cond,
            then_branch,
            else_branch,
        } => {
            has_self_tail(cond, name, false)
                || has_self_tail(then_branch, name, tail)
                || has_self_tail(else_branch, name, tail)
        }
        MExpr::Call { callee, args } => {
            (tail && callee == name) || args.iter().any(|a| has_self_tail(a, name, false))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{factorial_program, fib_program, Def, Program};
    use funtal::machine::eval_to_value;
    use funtal::typecheck;
    use funtal_syntax::build::*;
    use funtal_syntax::ArithOp;

    fn run_compiled(p: &Program, opts: CodegenOpts, name: &str, args: &[i64]) -> i64 {
        let compiled = compile_program(p, opts);
        let f = compiled.wrap(name);
        let call = app(f, args.iter().map(|n| fint_e(*n)).collect());
        match eval_to_value(&call, 10_000_000).unwrap() {
            funtal_syntax::FExpr::Int(n) => n,
            other => panic!("expected an int, got {other}"),
        }
    }

    #[test]
    fn leaf_function_compiles_and_typechecks() {
        let p = Program::new([Def::new(
            "addmul",
            &["x", "y"],
            MExpr::bin(
                ArithOp::Add,
                MExpr::bin(ArithOp::Mul, MExpr::v("x"), MExpr::v("x")),
                MExpr::v("y"),
            ),
        )])
        .unwrap();
        let compiled = compile_program(&p, CodegenOpts::default());
        let f = compiled.wrap("addmul");
        assert_eq!(
            typecheck(&app(f, vec![fint_e(5), fint_e(3)])).unwrap(),
            fint()
        );
        assert_eq!(
            run_compiled(&p, CodegenOpts::default(), "addmul", &[5, 3]),
            28
        );
    }

    #[test]
    fn conditional_compiles() {
        let p = Program::new([Def::new(
            "absish",
            &["x"],
            MExpr::if0(
                MExpr::v("x"),
                MExpr::i(100),
                MExpr::bin(ArithOp::Mul, MExpr::v("x"), MExpr::v("x")),
            ),
        )])
        .unwrap();
        assert_eq!(
            run_compiled(&p, CodegenOpts::default(), "absish", &[0]),
            100
        );
        assert_eq!(
            run_compiled(&p, CodegenOpts::default(), "absish", &[-4]),
            16
        );
    }

    #[test]
    fn recursive_factorial_compiles_both_ways() {
        let p = factorial_program();
        for opts in [
            CodegenOpts {
                tail_call_opt: false,
            },
            CodegenOpts {
                tail_call_opt: true,
            },
        ] {
            for n in 0..8 {
                assert_eq!(
                    run_compiled(&p, opts, "fact", &[n]),
                    p.eval("fact", &[n], 100).unwrap(),
                    "fact({n}) with {opts:?}"
                );
            }
        }
    }

    #[test]
    fn tail_recursive_loop_compiles() {
        // sum(n, acc) = if0 n { acc } { sum(n-1, acc+n) } — a genuine
        // self tail call, loopified under tail_call_opt.
        let p = Program::new([Def::new(
            "sum",
            &["n", "acc"],
            MExpr::if0(
                MExpr::v("n"),
                MExpr::v("acc"),
                MExpr::call(
                    "sum",
                    vec![
                        MExpr::bin(ArithOp::Sub, MExpr::v("n"), MExpr::i(1)),
                        MExpr::bin(ArithOp::Add, MExpr::v("acc"), MExpr::v("n")),
                    ],
                ),
            ),
        )])
        .unwrap();
        for opts in [
            CodegenOpts {
                tail_call_opt: false,
            },
            CodegenOpts {
                tail_call_opt: true,
            },
        ] {
            assert_eq!(run_compiled(&p, opts, "sum", &[10, 0]), 55, "{opts:?}");
        }
        // The loopified version contains a *_loop block and no *_ret
        // block for the self call.
        let compiled = compile_program(
            &p,
            CodegenOpts {
                tail_call_opt: true,
            },
        );
        assert!(compiled.heap.iter().any(|(l, _)| l.as_str() == "sum_loop"));
        assert!(!compiled
            .heap
            .iter()
            .any(|(l, _)| l.as_str().contains("_ret")));
    }

    #[test]
    fn dag_calls_compile() {
        let p = fib_program();
        assert_eq!(run_compiled(&p, CodegenOpts::default(), "fib", &[10]), 55);
        assert_eq!(
            run_compiled(
                &p,
                CodegenOpts {
                    tail_call_opt: true
                },
                "double_fib",
                &[8]
            ),
            42
        );
    }

    #[test]
    fn compiled_components_typecheck() {
        // The wrapped boundary for every example program typechecks as
        // an F value of the right arrow type.
        for (p, name, arity) in [
            (factorial_program(), "fact", 1),
            (fib_program(), "fib", 1),
            (fib_program(), "double_fib", 1),
        ] {
            for opts in [
                CodegenOpts {
                    tail_call_opt: false,
                },
                CodegenOpts {
                    tail_call_opt: true,
                },
            ] {
                let compiled = compile_program(&p, opts);
                let f = compiled.wrap(name);
                let ty = typecheck(&f).unwrap();
                assert_eq!(ty, arrow(vec![fint(); arity], fint()), "{name} {opts:?}");
            }
        }
    }
}
