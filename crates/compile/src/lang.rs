//! MiniF: the first-order F subset accepted by the compiler.
//!
//! A MiniF program is a set of top-level integer function definitions
//! whose bodies are built from variables, integer literals, arithmetic,
//! `if0`, and direct calls to definitions (including self-recursion).
//! Mutual recursion is rejected (the call graph must be a DAG with
//! self-loops), which keeps the F-side encoding of interpreted
//! functions to the paper's Fig 17 self-application pattern.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use funtal_syntax::ArithOp;

/// A MiniF expression.
#[derive(Clone, Debug, PartialEq)]
pub enum MExpr {
    /// A parameter reference.
    Var(String),
    /// An integer literal.
    Int(i64),
    /// Arithmetic.
    Binop {
        /// The operation.
        op: ArithOp,
        /// Left operand.
        lhs: Box<MExpr>,
        /// Right operand.
        rhs: Box<MExpr>,
    },
    /// `if0 cond { then } { else }`.
    If0 {
        /// Scrutinee.
        cond: Box<MExpr>,
        /// Zero branch.
        then_branch: Box<MExpr>,
        /// Non-zero branch.
        else_branch: Box<MExpr>,
    },
    /// A direct call to a definition.
    Call {
        /// The callee's name.
        callee: String,
        /// Arguments.
        args: Vec<MExpr>,
    },
}

impl MExpr {
    /// Variable reference.
    pub fn v(name: &str) -> MExpr {
        MExpr::Var(name.to_string())
    }

    /// Integer literal.
    pub fn i(n: i64) -> MExpr {
        MExpr::Int(n)
    }

    /// Binary operation.
    pub fn bin(op: ArithOp, l: MExpr, r: MExpr) -> MExpr {
        MExpr::Binop {
            op,
            lhs: Box::new(l),
            rhs: Box::new(r),
        }
    }

    /// Conditional.
    pub fn if0(c: MExpr, t: MExpr, e: MExpr) -> MExpr {
        MExpr::If0 {
            cond: Box::new(c),
            then_branch: Box::new(t),
            else_branch: Box::new(e),
        }
    }

    /// Call.
    pub fn call(callee: &str, args: Vec<MExpr>) -> MExpr {
        MExpr::Call {
            callee: callee.to_string(),
            args,
        }
    }

    fn callees(&self, out: &mut BTreeSet<String>) {
        match self {
            MExpr::Var(_) | MExpr::Int(_) => {}
            MExpr::Binop { lhs, rhs, .. } => {
                lhs.callees(out);
                rhs.callees(out);
            }
            MExpr::If0 {
                cond,
                then_branch,
                else_branch,
            } => {
                cond.callees(out);
                then_branch.callees(out);
                else_branch.callees(out);
            }
            MExpr::Call { callee, args } => {
                out.insert(callee.clone());
                args.iter().for_each(|a| a.callees(out));
            }
        }
    }

    /// True when the expression (and so its definition) makes no calls
    /// at all.
    pub fn is_call_free(&self) -> bool {
        let mut s = BTreeSet::new();
        self.callees(&mut s);
        s.is_empty()
    }
}

/// A top-level definition `fn name(params…) = body` (all ints).
#[derive(Clone, Debug, PartialEq)]
pub struct Def {
    /// The function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// The body.
    pub body: MExpr,
}

impl Def {
    /// Creates a definition.
    pub fn new(name: &str, params: &[&str], body: MExpr) -> Def {
        Def {
            name: name.to_string(),
            params: params.iter().map(|s| s.to_string()).collect(),
            body,
        }
    }

    /// The set of functions this definition calls.
    pub fn callees(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.body.callees(&mut out);
        out
    }

    /// True if the definition calls itself.
    pub fn is_self_recursive(&self) -> bool {
        self.callees().contains(&self.name)
    }
}

/// A MiniF program.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    /// The definitions, by name.
    pub defs: BTreeMap<String, Def>,
}

/// Errors raised by [`Program::validate`] and the reference
/// interpreter.
#[derive(Clone, Debug, PartialEq)]
pub enum MiniFError {
    /// A call to an undefined function.
    UndefinedFunction(String),
    /// A reference to an unbound parameter.
    UnboundVar(String),
    /// Wrong number of arguments.
    Arity {
        /// Callee.
        callee: String,
        /// Expected.
        expected: usize,
        /// Found.
        found: usize,
    },
    /// Mutual recursion (only self-recursion is supported).
    MutualRecursion(String, String),
    /// Duplicate definition or parameter.
    Duplicate(String),
    /// The reference interpreter's recursion bound was exceeded.
    DepthExceeded,
}

impl fmt::Display for MiniFError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiniFError::UndefinedFunction(n) => write!(f, "undefined function {n}"),
            MiniFError::UnboundVar(x) => write!(f, "unbound variable {x}"),
            MiniFError::Arity {
                callee,
                expected,
                found,
            } => {
                write!(f, "{callee} expects {expected} arguments, got {found}")
            }
            MiniFError::MutualRecursion(a, b) => {
                write!(f, "mutual recursion between {a} and {b} is not supported")
            }
            MiniFError::Duplicate(n) => write!(f, "duplicate name {n}"),
            MiniFError::DepthExceeded => f.write_str("recursion bound exceeded"),
        }
    }
}

impl std::error::Error for MiniFError {}

impl Program {
    /// Builds a program from definitions.
    pub fn new(defs: impl IntoIterator<Item = Def>) -> Result<Program, MiniFError> {
        let mut map = BTreeMap::new();
        for d in defs {
            if map.insert(d.name.clone(), d).is_some() {
                return Err(MiniFError::Duplicate("duplicate definition".to_string()));
            }
        }
        let p = Program { defs: map };
        p.validate()?;
        Ok(p)
    }

    /// Checks scoping, arities, and the DAG-plus-self-loops call-graph
    /// restriction.
    pub fn validate(&self) -> Result<(), MiniFError> {
        for def in self.defs.values() {
            let mut seen = BTreeSet::new();
            for p in &def.params {
                if !seen.insert(p.clone()) {
                    return Err(MiniFError::Duplicate(p.clone()));
                }
            }
            self.check_expr(def, &def.body)?;
        }
        // DAG check ignoring self-loops: depth-first search for a cycle.
        for start in self.defs.keys() {
            let mut stack = vec![(start.clone(), vec![start.clone()])];
            while let Some((cur, path)) = stack.pop() {
                let def = &self.defs[&cur];
                for callee in def.callees() {
                    if callee == cur {
                        continue; // self-loop allowed
                    }
                    if path.contains(&callee) {
                        return Err(MiniFError::MutualRecursion(cur, callee));
                    }
                    let mut p2 = path.clone();
                    p2.push(callee.clone());
                    stack.push((callee, p2));
                }
            }
        }
        Ok(())
    }

    fn check_expr(&self, def: &Def, e: &MExpr) -> Result<(), MiniFError> {
        match e {
            MExpr::Var(x) => {
                if def.params.iter().any(|p| p == x) {
                    Ok(())
                } else {
                    Err(MiniFError::UnboundVar(x.clone()))
                }
            }
            MExpr::Int(_) => Ok(()),
            MExpr::Binop { lhs, rhs, .. } => {
                self.check_expr(def, lhs)?;
                self.check_expr(def, rhs)
            }
            MExpr::If0 {
                cond,
                then_branch,
                else_branch,
            } => {
                self.check_expr(def, cond)?;
                self.check_expr(def, then_branch)?;
                self.check_expr(def, else_branch)
            }
            MExpr::Call { callee, args } => {
                let target = self
                    .defs
                    .get(callee)
                    .ok_or_else(|| MiniFError::UndefinedFunction(callee.clone()))?;
                if target.params.len() != args.len() {
                    return Err(MiniFError::Arity {
                        callee: callee.clone(),
                        expected: target.params.len(),
                        found: args.len(),
                    });
                }
                args.iter().try_for_each(|a| self.check_expr(def, a))
            }
        }
    }

    /// Topological order of the call graph (callees before callers,
    /// self-loops ignored). `validate` guarantees this exists.
    pub fn topo_order(&self) -> Vec<String> {
        let mut order = Vec::new();
        let mut done: BTreeSet<String> = BTreeSet::new();
        fn visit(p: &Program, name: &str, done: &mut BTreeSet<String>, order: &mut Vec<String>) {
            if done.contains(name) {
                return;
            }
            done.insert(name.to_string());
            for c in p.defs[name].callees() {
                if c != name {
                    visit(p, &c, done, order);
                }
            }
            order.push(name.to_string());
        }
        for name in self.defs.keys() {
            visit(self, name, &mut done, &mut order);
        }
        order
    }

    /// The reference big-step interpreter (used as ground truth by the
    /// compiler-correctness tests).
    ///
    /// # Errors
    ///
    /// Returns [`MiniFError::DepthExceeded`] when the call depth passes
    /// `max_depth` (the analogue of running out of fuel).
    pub fn eval(&self, fname: &str, args: &[i64], max_depth: u32) -> Result<i64, MiniFError> {
        let def = self
            .defs
            .get(fname)
            .ok_or_else(|| MiniFError::UndefinedFunction(fname.to_string()))?;
        if def.params.len() != args.len() {
            return Err(MiniFError::Arity {
                callee: fname.to_string(),
                expected: def.params.len(),
                found: args.len(),
            });
        }
        let env: BTreeMap<&str, i64> = def
            .params
            .iter()
            .map(|p| p.as_str())
            .zip(args.iter().copied())
            .collect();
        self.eval_expr(&def.body, &env, max_depth)
    }

    fn eval_expr(
        &self,
        e: &MExpr,
        env: &BTreeMap<&str, i64>,
        depth: u32,
    ) -> Result<i64, MiniFError> {
        match e {
            MExpr::Var(x) => env
                .get(x.as_str())
                .copied()
                .ok_or_else(|| MiniFError::UnboundVar(x.clone())),
            MExpr::Int(n) => Ok(*n),
            MExpr::Binop { op, lhs, rhs } => {
                let a = self.eval_expr(lhs, env, depth)?;
                let b = self.eval_expr(rhs, env, depth)?;
                Ok(op.apply(a, b))
            }
            MExpr::If0 {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval_expr(cond, env, depth)? == 0 {
                    self.eval_expr(then_branch, env, depth)
                } else {
                    self.eval_expr(else_branch, env, depth)
                }
            }
            MExpr::Call { callee, args } => {
                if depth == 0 {
                    return Err(MiniFError::DepthExceeded);
                }
                let vals: Result<Vec<i64>, MiniFError> =
                    args.iter().map(|a| self.eval_expr(a, env, depth)).collect();
                self.eval(callee, &vals?, depth - 1)
            }
        }
    }
}

/// Example program: factorial, the compiled analogue of Fig 17.
pub fn factorial_program() -> Program {
    Program::new([Def::new(
        "fact",
        &["n"],
        MExpr::if0(
            MExpr::v("n"),
            MExpr::i(1),
            MExpr::bin(
                ArithOp::Mul,
                MExpr::call(
                    "fact",
                    vec![MExpr::bin(ArithOp::Sub, MExpr::v("n"), MExpr::i(1))],
                ),
                MExpr::v("n"),
            ),
        ),
    )])
    .expect("factorial is valid")
}

/// Example program: naive Fibonacci plus helpers (a small DAG).
pub fn fib_program() -> Program {
    Program::new([
        Def::new(
            "fib",
            &["n"],
            MExpr::if0(
                MExpr::v("n"),
                MExpr::i(0),
                MExpr::if0(
                    MExpr::bin(ArithOp::Sub, MExpr::v("n"), MExpr::i(1)),
                    MExpr::i(1),
                    MExpr::bin(
                        ArithOp::Add,
                        MExpr::call(
                            "fib",
                            vec![MExpr::bin(ArithOp::Sub, MExpr::v("n"), MExpr::i(1))],
                        ),
                        MExpr::call(
                            "fib",
                            vec![MExpr::bin(ArithOp::Sub, MExpr::v("n"), MExpr::i(2))],
                        ),
                    ),
                ),
            ),
        ),
        Def::new(
            "double_fib",
            &["n"],
            MExpr::bin(
                ArithOp::Mul,
                MExpr::i(2),
                MExpr::call("fib", vec![MExpr::v("n")]),
            ),
        ),
    ])
    .expect("fib is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_interpreter_factorial() {
        let p = factorial_program();
        assert_eq!(p.eval("fact", &[0], 100), Ok(1));
        assert_eq!(p.eval("fact", &[5], 100), Ok(120));
        assert_eq!(p.eval("fact", &[-1], 50), Err(MiniFError::DepthExceeded));
    }

    #[test]
    fn reference_interpreter_fib() {
        let p = fib_program();
        let want = [0, 1, 1, 2, 3, 5, 8, 13];
        for (n, w) in want.iter().enumerate() {
            assert_eq!(p.eval("fib", &[n as i64], 100), Ok(*w));
        }
        assert_eq!(p.eval("double_fib", &[6], 100), Ok(16));
    }

    #[test]
    fn validation_catches_errors() {
        // Unbound variable.
        assert!(Program::new([Def::new("f", &["x"], MExpr::v("y"))]).is_err());
        // Arity.
        assert!(Program::new([
            Def::new("f", &["x"], MExpr::call("g", vec![])),
            Def::new("g", &["x"], MExpr::v("x")),
        ])
        .is_err());
        // Mutual recursion.
        assert!(matches!(
            Program::new([
                Def::new("f", &["x"], MExpr::call("g", vec![MExpr::v("x")])),
                Def::new("g", &["x"], MExpr::call("f", vec![MExpr::v("x")])),
            ]),
            Err(MiniFError::MutualRecursion(..))
        ));
        // Self-recursion is fine.
        assert!(
            Program::new([Def::new("f", &["x"], MExpr::call("f", vec![MExpr::v("x")]))]).is_ok()
        );
    }

    #[test]
    fn topo_order_puts_callees_first() {
        let p = fib_program();
        let order = p.topo_order();
        let fib_pos = order.iter().position(|n| n == "fib").unwrap();
        let dbl_pos = order.iter().position(|n| n == "double_fib").unwrap();
        assert!(fib_pos < dbl_pos);
    }
}
