//! Encoding MiniF definitions as (pure or mixed) F expressions.
//!
//! Interpreted definitions become F lambdas; self-recursion uses the
//! paper's Fig 17 self-application encoding (`factF`), and calls to
//! other definitions are inlined with whatever expression the caller's
//! environment has *materialized* for them — a plain F lambda for
//! interpreted callees or a boundary-wrapped compiled component for
//! compiled ones. This is exactly the space of configurations the §6
//! JIT discussion moves between.

use std::collections::BTreeMap;

use funtal_syntax::build::*;
use funtal_syntax::{FExpr, FTy, VarName};

use crate::lang::{Def, MExpr};

/// The recursive-self type `µa.(a, int, …, int) → int` for an `n`-ary
/// self-recursive definition.
pub fn self_mu_ty(arity: usize) -> FTy {
    let mut params = vec![fvar_ty("a")];
    params.extend(std::iter::repeat_n(fint(), arity));
    fmu("a", arrow(params, fint()))
}

/// Converts a definition to a closed F expression of type
/// `(int, …, int) → int`, given materialized expressions for its
/// (non-self) callees.
pub fn def_to_fexpr(def: &Def, materialized: &BTreeMap<String, FExpr>) -> FExpr {
    let n = def.params.len();
    if !def.is_self_recursive() {
        let body = conv(&def.body, def, None, materialized);
        return FExpr::Lam(Box::new(funtal_syntax::Lam {
            params: def
                .params
                .iter()
                .map(|p| (VarName::new(p.as_str()), fint()))
                .collect(),
            zeta: funtal_syntax::TyVar::new(format!("zl_{}", def.name)),
            phi_in: vec![],
            phi_out: vec![],
            body,
        }));
    }
    // Self-application encoding: λ(x̄). F (fold F) x̄ with
    // F = λ(self, x̄). body[f(ē) ↦ (unfold self)(self, ē)].
    let mu = self_mu_ty(n);
    let self_var = fresh_self_name(def);
    let inner_body = conv(&def.body, def, Some(&self_var), materialized);
    let mut big_params: Vec<(VarName, FTy)> = vec![(self_var.clone(), mu.clone())];
    big_params.extend(
        def.params
            .iter()
            .map(|p| (VarName::new(p.as_str()), fint())),
    );
    let big_f = FExpr::Lam(Box::new(funtal_syntax::Lam {
        params: big_params,
        zeta: funtal_syntax::TyVar::new(format!("zr_{}", def.name)),
        phi_in: vec![],
        phi_out: vec![],
        body: inner_body,
    }));
    let mut outer_args = vec![ffold(mu, big_f.clone())];
    outer_args.extend(def.params.iter().map(|p| var(p.as_str())));
    FExpr::Lam(Box::new(funtal_syntax::Lam {
        params: def
            .params
            .iter()
            .map(|p| (VarName::new(p.as_str()), fint()))
            .collect(),
        zeta: funtal_syntax::TyVar::new(format!("zl_{}", def.name)),
        phi_in: vec![],
        phi_out: vec![],
        body: FExpr::app(big_f, outer_args),
    }))
}

fn fresh_self_name(def: &Def) -> VarName {
    let mut name = format!("self_{}", def.name);
    while def.params.contains(&name) {
        name.push('_');
    }
    VarName::new(name)
}

fn conv(
    e: &MExpr,
    def: &Def,
    self_var: Option<&VarName>,
    materialized: &BTreeMap<String, FExpr>,
) -> FExpr {
    match e {
        MExpr::Var(x) => var(x.as_str()),
        MExpr::Int(n) => fint_e(*n),
        MExpr::Binop { op, lhs, rhs } => FExpr::binop(
            *op,
            conv(lhs, def, self_var, materialized),
            conv(rhs, def, self_var, materialized),
        ),
        MExpr::If0 {
            cond,
            then_branch,
            else_branch,
        } => if0(
            conv(cond, def, self_var, materialized),
            conv(then_branch, def, self_var, materialized),
            conv(else_branch, def, self_var, materialized),
        ),
        MExpr::Call { callee, args } => {
            let args: Vec<FExpr> = args
                .iter()
                .map(|a| conv(a, def, self_var, materialized))
                .collect();
            if *callee == def.name {
                let sv = self_var.expect("self-call in a non-recursive conversion");
                let mut full = vec![FExpr::Var(sv.clone())];
                full.extend(args);
                app(funfold(FExpr::Var(sv.clone())), full)
            } else {
                let target = materialized
                    .get(callee)
                    .unwrap_or_else(|| panic!("callee {callee} not materialized"))
                    .clone();
                app(target, args)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::{factorial_program, fib_program};
    use funtal::machine::eval_to_value;
    use funtal::typecheck;

    #[test]
    fn interpreted_factorial_agrees_with_reference() {
        let p = factorial_program();
        let f = def_to_fexpr(&p.defs["fact"], &BTreeMap::new());
        assert_eq!(typecheck(&f).unwrap(), arrow(vec![fint()], fint()));
        for n in 0..7 {
            let got = eval_to_value(&app(f.clone(), vec![fint_e(n)]), 1_000_000).unwrap();
            assert_eq!(got, fint_e(p.eval("fact", &[n], 100).unwrap()));
        }
    }

    #[test]
    fn interpreted_dag_inlines_callees() {
        let p = fib_program();
        let mut mat = BTreeMap::new();
        let fib = def_to_fexpr(&p.defs["fib"], &mat);
        mat.insert("fib".to_string(), fib);
        let dbl = def_to_fexpr(&p.defs["double_fib"], &mat);
        assert_eq!(typecheck(&dbl).unwrap(), arrow(vec![fint()], fint()));
        let got = eval_to_value(&app(dbl, vec![fint_e(7)]), 5_000_000).unwrap();
        assert_eq!(got, fint_e(p.eval("double_fib", &[7], 100).unwrap()));
    }
}
