//! A JIT-style runtime in the spirit of the paper's §6 "JIT
//! Formalization": the space of configurations is the set of choices of
//! which definitions are *interpreted* (materialized as F lambdas) and
//! which are *compiled* (materialized as boundary-wrapped T
//! components). The runtime counts invocations and flips hot functions
//! from interpreted to compiled, re-wiring callers on the next
//! materialization — the multi-language program moves between
//! configurations exactly as the paper describes.
//!
//! Correctness of every move is testable: all configurations must be
//! observationally equivalent (see `tests/jit_correctness.rs` and E12
//! in DESIGN.md).

use std::collections::{BTreeMap, BTreeSet};

use funtal::machine::{run_fexpr_threaded, FtOutcome, RunCfg};
use funtal_syntax::build::*;
use funtal_syntax::FExpr;
use funtal_tal::trace::CountTracer;

use crate::codegen::{compile_program, CodegenOpts, Compiled};
use crate::femit::def_to_fexpr;
use crate::lang::Program;

/// Which implementation a definition currently uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Materialized as an F lambda (self-recursion via fold/unfold).
    Interpreted,
    /// Materialized as a boundary around compiled T blocks.
    Compiled,
}

/// Statistics from one invocation.
#[derive(Clone, Copy, Debug)]
pub struct InvokeStats {
    /// The integer result.
    pub result: i64,
    /// T instructions executed.
    pub t_instrs: u64,
    /// F reduction steps.
    pub f_steps: u64,
    /// Boundary crossings.
    pub crossings: u64,
}

/// The JIT runtime.
#[derive(Clone, Debug)]
pub struct Jit {
    program: Program,
    compiled: Compiled,
    threshold: u64,
    counters: BTreeMap<String, u64>,
    hot: BTreeSet<String>,
}

impl Jit {
    /// Creates a runtime over a validated program. Functions start
    /// interpreted and are compiled after `threshold` invocations.
    pub fn new(program: Program, threshold: u64, opts: CodegenOpts) -> Self {
        let compiled = compile_program(&program, opts);
        Jit {
            program,
            compiled,
            threshold,
            counters: BTreeMap::new(),
            hot: BTreeSet::new(),
        }
    }

    /// The current mode of a definition.
    pub fn mode(&self, name: &str) -> Mode {
        if self.hot.contains(name) {
            Mode::Compiled
        } else {
            Mode::Interpreted
        }
    }

    /// Forces a definition into compiled mode (the JIT "replacement"
    /// move).
    pub fn force_compile(&mut self, name: &str) {
        self.hot.insert(name.to_string());
    }

    /// Materializes the F expression for `name` under the current
    /// configuration: compiled definitions become boundary wrappers,
    /// interpreted ones become F lambdas with their callees'
    /// materializations inlined.
    pub fn materialize(&self, name: &str) -> FExpr {
        let mut done: BTreeMap<String, FExpr> = BTreeMap::new();
        for n in self.program.topo_order() {
            let e = if self.hot.contains(&n) {
                self.compiled.wrap(&n)
            } else {
                def_to_fexpr(&self.program.defs[&n], &done)
            };
            done.insert(n, e);
        }
        done.remove(name)
            .expect("materialize of a defined function")
    }

    /// Invokes `name(args)` under the current configuration, bumping
    /// its hotness counter (and compiling it once the counter passes
    /// the threshold — affecting *future* invocations, as in a real
    /// JIT).
    pub fn invoke(&mut self, name: &str, args: &[i64], fuel: u64) -> Result<InvokeStats, String> {
        let expr = app(
            self.materialize(name),
            args.iter().map(|n| fint_e(*n)).collect(),
        );
        let (out, tr) = run_fexpr_threaded(&expr, RunCfg::with_fuel(fuel), CountTracer::new())
            .map_err(|e| e.to_string())?;
        let result = match out {
            FtOutcome::Value(FExpr::Int(n)) => n,
            FtOutcome::Value(v) => return Err(format!("non-integer result {v}")),
            FtOutcome::Halted(w) => return Err(format!("unexpected T halt {w}")),
            FtOutcome::OutOfFuel => return Err("out of fuel".to_string()),
        };
        let c = self.counters.entry(name.to_string()).or_insert(0);
        *c += 1;
        if *c >= self.threshold {
            self.hot.insert(name.to_string());
        }
        Ok(InvokeStats {
            result,
            t_instrs: tr.instrs,
            f_steps: tr.f_steps,
            crossings: tr.crossings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::factorial_program;

    #[test]
    fn jit_flips_to_compiled_after_threshold() {
        let mut jit = Jit::new(
            factorial_program(),
            2,
            CodegenOpts {
                tail_call_opt: true,
            },
        );
        assert_eq!(jit.mode("fact"), Mode::Interpreted);
        let s1 = jit.invoke("fact", &[6], 5_000_000).unwrap();
        assert_eq!(s1.result, 720);
        let s2 = jit.invoke("fact", &[6], 5_000_000).unwrap();
        assert_eq!(s2.result, 720);
        // Now hot: the next invocation runs compiled code.
        assert_eq!(jit.mode("fact"), Mode::Compiled);
        let s3 = jit.invoke("fact", &[6], 5_000_000).unwrap();
        assert_eq!(s3.result, 720);
        // The compiled configuration does strictly less F work.
        assert!(
            s3.f_steps < s1.f_steps,
            "compiled {} F steps vs interpreted {}",
            s3.f_steps,
            s1.f_steps
        );
        assert!(s3.t_instrs > s1.t_instrs);
    }
}
