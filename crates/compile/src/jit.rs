//! A JIT-style runtime in the spirit of the paper's §6 "JIT
//! Formalization": the space of configurations is the set of choices of
//! which definitions are *interpreted* (materialized as F lambdas) and
//! which are *compiled* (materialized as boundary-wrapped T
//! components). The runtime counts invocations and flips hot functions
//! from interpreted to compiled, re-wiring callers on the next
//! materialization — the multi-language program moves between
//! configurations exactly as the paper describes.
//!
//! Beyond the paper's two-point space, the runtime has a third rung:
//! definitions that stay hot past a second threshold keep their
//! compiled materialization but execute on the direct-threaded
//! **bytecode** tier (`EvalStrategy::Bytecode`), which lowers the T
//! cursor to register-allocated linear IR. The move is again purely a
//! configuration change — outcomes and step counts are proven
//! identical across all three rungs in `tests/jit_correctness.rs`.
//!
//! Correctness of every move is testable: all configurations must be
//! observationally equivalent (see `tests/jit_correctness.rs` and E12
//! in DESIGN.md).

use std::collections::{BTreeMap, BTreeSet};

use funtal::machine::{run_fexpr_threaded, EvalStrategy, FtOutcome, RunCfg};
use funtal_syntax::build::*;
use funtal_syntax::FExpr;
use funtal_tal::trace::CountTracer;

use crate::codegen::{compile_program, CodegenOpts, Compiled};
use crate::femit::def_to_fexpr;
use crate::lang::Program;

/// Which implementation a definition currently uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Materialized as an F lambda (self-recursion via fold/unfold).
    Interpreted,
    /// Materialized as a boundary around compiled T blocks.
    Compiled,
    /// Compiled materialization, executed on the direct-threaded
    /// bytecode tier (linear IR below the compiled cursor).
    Bytecode,
}

/// Statistics from one invocation.
#[derive(Clone, Copy, Debug)]
pub struct InvokeStats {
    /// The integer result.
    pub result: i64,
    /// The mode the invocation actually executed under (promotion
    /// affects *future* invocations, so this lags the counter by one).
    pub mode: Mode,
    /// T instructions executed.
    pub t_instrs: u64,
    /// F reduction steps.
    pub f_steps: u64,
    /// Boundary crossings.
    pub crossings: u64,
}

/// The JIT runtime.
#[derive(Clone, Debug)]
pub struct Jit {
    program: Program,
    compiled: Compiled,
    threshold: u64,
    counters: BTreeMap<String, u64>,
    hot: BTreeSet<String>,
    blazing: BTreeSet<String>,
}

impl Jit {
    /// Creates a runtime over a validated program. Functions start
    /// interpreted, are compiled after `threshold` invocations, and
    /// drop to the bytecode tier after `2 * threshold`.
    pub fn new(program: Program, threshold: u64, opts: CodegenOpts) -> Self {
        let compiled = compile_program(&program, opts);
        Jit {
            program,
            compiled,
            threshold,
            counters: BTreeMap::new(),
            hot: BTreeSet::new(),
            blazing: BTreeSet::new(),
        }
    }

    /// The current mode of a definition.
    pub fn mode(&self, name: &str) -> Mode {
        if self.blazing.contains(name) {
            Mode::Bytecode
        } else if self.hot.contains(name) {
            Mode::Compiled
        } else {
            Mode::Interpreted
        }
    }

    /// Forces a definition into compiled mode (the JIT "replacement"
    /// move).
    pub fn force_compile(&mut self, name: &str) {
        self.hot.insert(name.to_string());
    }

    /// Forces a definition straight onto the bytecode tier.
    pub fn force_bytecode(&mut self, name: &str) {
        self.hot.insert(name.to_string());
        self.blazing.insert(name.to_string());
    }

    /// Materializes the F expression for `name` under the current
    /// configuration: compiled definitions become boundary wrappers,
    /// interpreted ones become F lambdas with their callees'
    /// materializations inlined.
    pub fn materialize(&self, name: &str) -> FExpr {
        let mut done: BTreeMap<String, FExpr> = BTreeMap::new();
        for n in self.program.topo_order() {
            let e = if self.hot.contains(&n) {
                self.compiled.wrap(&n)
            } else {
                def_to_fexpr(&self.program.defs[&n], &done)
            };
            done.insert(n, e);
        }
        done.remove(name)
            .expect("materialize of a defined function")
    }

    /// Invokes `name(args)` under the current configuration, bumping
    /// its hotness counter (and promoting it — to compiled past the
    /// threshold, to the bytecode tier past twice the threshold — for
    /// *future* invocations, as in a real JIT).
    pub fn invoke(&mut self, name: &str, args: &[i64], fuel: u64) -> Result<InvokeStats, String> {
        let mode = self.mode(name);
        let expr = app(
            self.materialize(name),
            args.iter().map(|n| fint_e(*n)).collect(),
        );
        let mut cfg = RunCfg::with_fuel(fuel);
        if mode == Mode::Bytecode {
            cfg = cfg.with_strategy(EvalStrategy::Bytecode);
        }
        let (out, tr) =
            run_fexpr_threaded(&expr, cfg, CountTracer::new()).map_err(|e| e.to_string())?;
        let result = match out {
            FtOutcome::Value(FExpr::Int(n)) => n,
            FtOutcome::Value(v) => return Err(format!("non-integer result {v}")),
            FtOutcome::Halted(w) => return Err(format!("unexpected T halt {w}")),
            FtOutcome::OutOfFuel => return Err("out of fuel".to_string()),
        };
        let count = {
            let c = self.counters.entry(name.to_string()).or_insert(0);
            *c += 1;
            *c
        };
        if count >= self.threshold {
            self.hot.insert(name.to_string());
        }
        if count >= 2 * self.threshold && !self.blazing.contains(name) {
            // Promotion to the bytecode tier is gated on the static
            // verifier: the compiled materialization is lowered once
            // and checked (register initialization, jump-offset
            // bounds, fused-cost table). A definition whose lowering
            // does not verify stays on the compiled cursor — a
            // codegen or lowering bug degrades to the slower rung
            // instead of executing unchecked bytecode.
            let lowered = funtal::prelower(&self.materialize(name));
            if funtal::verify_lowered(&lowered).is_ok() {
                self.blazing.insert(name.to_string());
            }
        }
        Ok(InvokeStats {
            result,
            mode,
            t_instrs: tr.instrs,
            f_steps: tr.f_steps,
            crossings: tr.crossings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lang::factorial_program;

    #[test]
    fn jit_flips_to_compiled_after_threshold() {
        let mut jit = Jit::new(
            factorial_program(),
            2,
            CodegenOpts {
                tail_call_opt: true,
            },
        );
        assert_eq!(jit.mode("fact"), Mode::Interpreted);
        let s1 = jit.invoke("fact", &[6], 5_000_000).unwrap();
        assert_eq!((s1.result, s1.mode), (720, Mode::Interpreted));
        let s2 = jit.invoke("fact", &[6], 5_000_000).unwrap();
        assert_eq!((s2.result, s2.mode), (720, Mode::Interpreted));
        // Now hot: the next invocation runs compiled code.
        assert_eq!(jit.mode("fact"), Mode::Compiled);
        let s3 = jit.invoke("fact", &[6], 5_000_000).unwrap();
        assert_eq!((s3.result, s3.mode), (720, Mode::Compiled));
        // The compiled configuration does strictly less F work.
        assert!(
            s3.f_steps < s1.f_steps,
            "compiled {} F steps vs interpreted {}",
            s3.f_steps,
            s1.f_steps
        );
        assert!(s3.t_instrs > s1.t_instrs);
        // Past twice the threshold: the bytecode tier, with step
        // counts identical to the compiled rung (same configuration,
        // faster machine).
        let s4 = jit.invoke("fact", &[6], 5_000_000).unwrap();
        assert_eq!(jit.mode("fact"), Mode::Bytecode);
        let s5 = jit.invoke("fact", &[6], 5_000_000).unwrap();
        assert_eq!((s5.result, s5.mode), (720, Mode::Bytecode));
        assert_eq!(
            (s5.t_instrs, s5.f_steps, s5.crossings),
            (s4.t_instrs, s4.f_steps, s4.crossings),
            "bytecode tier changed observable step counts"
        );
    }

    #[test]
    fn force_bytecode_skips_the_ladder() {
        let mut jit = Jit::new(factorial_program(), 1_000, CodegenOpts::default());
        jit.force_bytecode("fact");
        assert_eq!(jit.mode("fact"), Mode::Bytecode);
        let s = jit.invoke("fact", &[5], 5_000_000).unwrap();
        assert_eq!((s.result, s.mode), (120, Mode::Bytecode));
    }
}
