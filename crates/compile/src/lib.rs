//! A compiler from **MiniF** (a first-order F subset) to **T**
//! components, plus a JIT-style runtime — the implemented version of the
//! FunTAL paper's §6 "JIT Formalization" and "Compositional Compiler
//! Correctness" discussions.
//!
//! - [`lang`]: the MiniF source language with validation and a
//!   reference interpreter (the ground truth for correctness tests);
//! - [`femit`]: materializing definitions as F lambdas (self-recursion
//!   via the paper's Fig 17 fold/unfold self-application);
//! - [`codegen`]: compiling definitions to multi-block T code following
//!   the Fig 9 calling convention, with optional self-tail-call
//!   loopification (which turns the compiled `factF` into exactly the
//!   register-loop shape of the paper's `factT`);
//! - [`jit`]: a runtime that moves between interpreted and compiled
//!   configurations based on invocation counts.
//!
//! Compiler correctness is *expressed the paper's way*: a compiled
//! definition embedded through a boundary must be contextually
//! equivalent to its source — `eS ≈ E[ℱ𝒯 eT]` — and the test suite
//! checks this with the bounded logical relation of `funtal-equiv`.
//!
//! # Example
//!
//! ```
//! use funtal_compile::lang::factorial_program;
//! use funtal_compile::codegen::{compile_program, CodegenOpts};
//! use funtal::machine::eval_to_value;
//! use funtal_syntax::build::*;
//!
//! let program = factorial_program();
//! let compiled = compile_program(&program, CodegenOpts { tail_call_opt: true });
//! let fact = compiled.wrap("fact");
//! let five = eval_to_value(&app(fact, vec![fint_e(5)]), 1_000_000)?;
//! assert_eq!(five, fint_e(120));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
pub mod femit;
pub mod jit;
pub mod lang;
pub mod wire;

pub use codegen::{compile_def, compile_program, CodegenOpts, Compiled};
pub use femit::def_to_fexpr;
pub use jit::{Jit, Mode};
pub use lang::{Def, MExpr, MiniFError, Program};
