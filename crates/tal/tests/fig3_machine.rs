//! E1/E2: Figure 3 type-checks, runs to 2, and its control-flow trace
//! matches Figure 4; plus machine-level unit tests.

use funtal_syntax::build::*;
use funtal_syntax::{Label, WordVal};
use funtal_tal::check::check_program;
use funtal_tal::figures::fig3_call_to_call;
use funtal_tal::machine::{run_program, Memory, Outcome};
use funtal_tal::trace::{CountTracer, Event, NullTracer, VecTracer};

#[test]
fn fig3_typechecks() {
    check_program(&fig3_call_to_call(), &int()).unwrap();
}

#[test]
fn fig3_runs_to_two() {
    let out = run_program(&fig3_call_to_call(), 1_000, &mut NullTracer).unwrap();
    assert_eq!(out, Outcome::Halted(WordVal::Int(2)));
}

#[test]
fn fig4_trace_matches_paper() {
    // Fig 4: f --call--> l1 --call--> l2 --jmp--> l2aux --ret--> l2ret
    //          --ret--> l1ret --halt-->
    let mut tr = VecTracer::new();
    run_program(&fig3_call_to_call(), 1_000, &mut tr).unwrap();
    let transfers: Vec<&Event> = tr.transfers();
    let expect = [
        Event::Call {
            to: Label::new("l1"),
        },
        Event::Call {
            to: Label::new("l2"),
        },
        Event::Jmp {
            to: Label::new("l2aux"),
        },
        Event::Ret {
            to: Label::new("l2ret"),
            val: r1(),
        },
        Event::Ret {
            to: Label::new("l1ret"),
            val: r1(),
        },
        Event::Halt { reg: r1() },
    ];
    assert_eq!(transfers.len(), expect.len(), "trace: {transfers:?}");
    for (got, want) in transfers.iter().zip(&expect) {
        assert_eq!(*got, want, "full trace: {transfers:?}");
    }
}

#[test]
fn fig3_step_counts_are_stable() {
    let mut ct = CountTracer::new();
    run_program(&fig3_call_to_call(), 1_000, &mut ct).unwrap();
    // 8 straight-line instructions execute: mv, salloc, sst, mv, mv, mul,
    // sld, sfree.
    assert_eq!(ct.instrs, 8);
    assert_eq!(ct.transfers, 5);
}

#[test]
fn machine_stack_discipline() {
    // Build and run: salloc 2; mv r1, 1; sst 1, r1; sld r2, 1;
    // sfree 2; halt — checks slot indexing (0 = top).
    let prog = tcomp(
        seq(
            vec![
                salloc(2),
                mv(r1(), int_v(7)),
                sst(1, r1()),
                sld(r2(), 1),
                sfree(2),
            ],
            halt(int(), nil(), r2()),
        ),
        vec![],
    );
    let out = run_program(&prog, 100, &mut NullTracer).unwrap();
    assert_eq!(out, Outcome::Halted(WordVal::Int(7)));
}

#[test]
fn machine_heap_tuples() {
    // Push 1, 2; ralloc; mutate field 0; load both fields; compute.
    let prog = tcomp(
        seq(
            vec![
                mv(r1(), int_v(1)),
                mv(r2(), int_v(2)),
                salloc(2),
                sst(0, r1()),
                sst(1, r2()),
                ralloc(r3(), 2),
                mv(r4(), int_v(10)),
                st(r3(), 0, r4()),
                ld(r5(), r3(), 0),
                ld(r6(), r3(), 1),
                add(r1(), r5(), reg(r6())),
            ],
            halt(int(), nil(), r1()),
        ),
        vec![],
    );
    let out = run_program(&prog, 100, &mut NullTracer).unwrap();
    // field0 = 10 (overwritten), field1 = 2 → 12.
    assert_eq!(out, Outcome::Halted(WordVal::Int(12)));
}

#[test]
fn machine_rejects_store_to_boxed() {
    let prog = tcomp(
        seq(
            vec![
                mv(r1(), int_v(1)),
                salloc(1),
                sst(0, r1()),
                balloc(r3(), 1),
                st(r3(), 0, r1()),
            ],
            halt(int(), nil(), r1()),
        ),
        vec![],
    );
    let err = run_program(&prog, 100, &mut NullTracer).unwrap_err();
    assert!(
        matches!(err, funtal_tal::RuntimeError::ImmutableStore(_)),
        "{err}"
    );
}

#[test]
fn machine_out_of_fuel_on_loop() {
    // A self-loop: l: jmp l.
    let prog = tcomp(
        seq(vec![], jmp(loc("l"))),
        vec![(
            "l",
            code_block(
                vec![],
                chi([]),
                nil(),
                q_end(int(), nil()),
                seq(vec![], jmp(loc("l"))),
            ),
        )],
    );
    let out = run_program(&prog, 50, &mut NullTracer).unwrap();
    assert_eq!(out, Outcome::OutOfFuel);
}

#[test]
fn merge_freshens_colliding_labels() {
    let block = code_block(
        vec![],
        chi([]),
        nil(),
        q_end(int(), nil()),
        seq(vec![], halt(int(), nil(), r1())),
    );
    let comp = tcomp(seq(vec![], jmp(loc("l"))), vec![("l", block.clone())]);
    let mut mem = Memory::new();
    let seq1 = mem.merge_fragment(&comp);
    // First merge keeps the name.
    assert_eq!(seq1.to_string(), "jmp l");
    // Second merge must rename.
    let seq2 = mem.merge_fragment(&comp);
    assert_ne!(seq2.to_string(), "jmp l");
    assert_eq!(mem.heap.len(), 2);
}

#[test]
fn unpack_substitutes_into_rest() {
    // unpack <a, r1> (pack <int, 5> as exists a. a); halt a, * {r1}
    // after unpacking, the halt annotation must have become int... the
    // machine doesn't check types, but the substitution must not crash
    // and the value must flow.
    let packed = funtal_syntax::SmallVal::Pack {
        hidden: int(),
        body: Box::new(int_v(5)),
        ann: exists("a", tvar("a")),
    };
    let prog = tcomp(
        seq(
            vec![unpack("a", r1(), packed)],
            halt(tvar("a"), nil(), r1()),
        ),
        vec![],
    );
    let out = run_program(&prog, 100, &mut NullTracer).unwrap();
    assert_eq!(out, Outcome::Halted(WordVal::Int(5)));
}

#[test]
fn bnz_taken_and_not_taken() {
    let target = code_block(
        vec![],
        chi([(r1(), int())]),
        nil(),
        q_end(int(), nil()),
        seq(vec![mv(r1(), int_v(100))], halt(int(), nil(), r1())),
    );
    let mk = |n: i64| {
        tcomp(
            seq(
                vec![mv(r1(), int_v(n)), bnz(r1(), loc("t")), mv(r1(), int_v(50))],
                halt(int(), nil(), r1()),
            ),
            vec![("t", target.clone())],
        )
    };
    // Non-zero: branch taken → 100.
    assert_eq!(
        run_program(&mk(1), 100, &mut NullTracer).unwrap(),
        Outcome::Halted(WordVal::Int(100))
    );
    // Zero: fall through → 50.
    assert_eq!(
        run_program(&mk(0), 100, &mut NullTracer).unwrap(),
        Outcome::Halted(WordVal::Int(50))
    );
}
