//! Per-rule tests for the T type system (Fig 2), including the paper's
//! §3 inline examples, plus negative tests for every marker-safety
//! condition.

use funtal_syntax::build::*;
use funtal_syntax::{HeapTyping, RetMarker, StackTy, TTy};
use funtal_tal::check::{check_instr, check_marker, check_seq, check_terminator, ret_type, TCtx};
use funtal_tal::error::TypeError;
use funtal_tal::wf::Delta;

fn ctx(chi_pairs: Vec<(funtal_syntax::Reg, TTy)>, sigma: StackTy, q: RetMarker) -> TCtx {
    TCtx::new(HeapTyping::new(), Delta::new(), chi(chi_pairs), sigma, q)
}

fn end_int() -> RetMarker {
    q_end(int(), nil())
}

/// The continuation type `box ∀[].{r1: int; σ} q`.
fn cont(sigma: StackTy, q: RetMarker) -> TTy {
    code_ty(vec![], chi([(r1(), int())]), sigma, q)
}

// --- §3 example: mv/salloc/sst postconditions --------------------------

#[test]
fn sec3_mv_salloc_sst_example() {
    // · ; · ; · ; • ; ra ⊢ mv r1, 42 ⇒ r1: int; •; ra
    // (we use end{int; int :: •} as the marker since a bare `ra` marker
    // needs ra in χ; the stack/χ transitions are what the example shows)
    let c0 = ctx(vec![], nil(), q_end(int(), stack(vec![int()], nil())));
    let c1 = check_instr(&c0, &mv(r1(), int_v(42))).unwrap();
    assert_eq!(c1.chi.get(r1()), Some(&int()));
    assert_eq!(c1.sigma, nil());

    // salloc 1 ⇒ r1: int; unit :: •; ra
    let c2 = check_instr(&c1, &salloc(1)).unwrap();
    assert_eq!(c2.sigma, stack(vec![unit()], nil()));

    // sst 0, r1 ⇒ r1: int; int :: •; ra
    let c3 = check_instr(&c2, &sst(0, r1())).unwrap();
    assert_eq!(c3.sigma, stack(vec![int()], nil()));
}

// --- §3 example: jmp ----------------------------------------------------

#[test]
fn sec3_jmp_example() {
    // ℓ : box∀[].{r2: unit; int :: •} end{unit;•}, with
    // r1: int, r2: unit; int :: •; end{unit;•} ⊢ jmp ℓ
    let l_ty = code_ty(
        vec![],
        chi([(r2(), unit())]),
        stack(vec![int()], nil()),
        q_end(unit(), nil()),
    );
    let mut psi = HeapTyping::new();
    // Give ℓ its code type by placing it in Ψ as a boxed code heap type.
    let funtal_syntax::TTy::Boxed(h) = l_ty.clone() else {
        unreachable!()
    };
    psi.insert(
        funtal_syntax::Label::new("l"),
        funtal_syntax::Mutability::Boxed,
        *h,
    );

    let c = TCtx::new(
        psi,
        Delta::new(),
        chi([(r1(), int()), (r2(), unit())]),
        stack(vec![int()], nil()),
        q_end(unit(), nil()),
    );
    assert!(check_terminator(&c, &jmp(loc("l"))).is_ok());

    // With a different stack, the jump fails.
    let c_bad = TCtx {
        sigma: nil(),
        ..c.clone()
    };
    assert!(check_terminator(&c_bad, &jmp(loc("l"))).is_err());

    // With a different marker, the jump fails.
    let c_bad2 = TCtx {
        q: q_end(int(), nil()),
        ..c
    };
    assert!(check_terminator(&c_bad2, &jmp(loc("l"))).is_err());
}

// --- §3 example: call (halting case) ------------------------------------

#[test]
fn sec3_call_example() {
    // ℓ : box∀[ζ,ε].{ra: box∀[].{r1:int; ζ}ε; unit :: ζ} ra
    let callee_ty = code_ty(
        vec![d_stk("z"), d_ret("e")],
        chi([(ra(), cont(zvar("z"), q_var("e")))]),
        stack(vec![unit()], zvar("z")),
        q_reg(ra()),
    );
    let mut psi = HeapTyping::new();
    let funtal_syntax::TTy::Boxed(h) = callee_ty else {
        unreachable!()
    };
    psi.insert(
        funtal_syntax::Label::new("l"),
        funtal_syntax::Mutability::Boxed,
        *h,
    );

    // Caller: r1: int, ra: box∀[].{r1:int; int::•}end{int;•};
    // stack unit :: int :: •.
    //
    // Deviation note (D10 in DESIGN.md): the paper prints the caller's
    // marker as end{unit;•}, but its own halting call rule requires the
    // call's marker annotation end{int;•} to *be* the caller's current
    // marker (the same metavariables appear in both positions), and the
    // register-file subtyping premise then forces ra's ε-instantiation to
    // match. We therefore check the example with the marker end{int;•}.
    let caller_cont = cont(stack(vec![int()], nil()), q_end(int(), nil()));
    let c = TCtx::new(
        psi,
        Delta::new(),
        chi([(r1(), int()), (ra(), caller_cont)]),
        stack(vec![unit(), int()], nil()),
        q_end(int(), nil()),
    );
    // call ℓ {int :: •, end{int; •}}: the protected tail is int::•.
    let term = call(loc("l"), stack(vec![int()], nil()), q_end(int(), nil()));
    check_terminator(&c, &term).unwrap();

    // Protecting the wrong tail fails.
    let bad_term = call(loc("l"), nil(), q_end(int(), stack(vec![int()], nil())));
    assert!(check_terminator(&c, &bad_term).is_err());
}

// --- marker-safety negative tests ---------------------------------------

#[test]
fn mv_cannot_clobber_marker_register() {
    let c = ctx(vec![(ra(), cont(nil(), end_int()))], nil(), q_reg(ra()));
    let err = check_instr(&c, &mv(ra(), int_v(1))).unwrap_err();
    assert!(matches!(err.root(), TypeError::ClobbersMarker(_)), "{err}");
}

#[test]
fn mv_of_marker_moves_marker() {
    let c = ctx(vec![(ra(), cont(nil(), end_int()))], nil(), q_reg(ra()));
    let c2 = check_instr(&c, &mv(r2(), reg(ra()))).unwrap();
    assert_eq!(c2.q, q_reg(r2()));
    assert_eq!(c2.chi.get(r2()), c.chi.get(ra()));
}

#[test]
fn sst_of_marker_moves_marker_to_stack() {
    let c = ctx(
        vec![(ra(), cont(nil(), end_int()))],
        stack(vec![unit()], nil()),
        q_reg(ra()),
    );
    let c2 = check_instr(&c, &sst(0, ra())).unwrap();
    assert_eq!(c2.q, q_i(0));
    assert_eq!(c2.sigma.get(0), c.chi.get(ra()));
}

#[test]
fn sst_cannot_overwrite_marker_slot() {
    let c = ctx(
        vec![(r1(), int())],
        stack(vec![cont(nil(), end_int())], nil()),
        q_i(0),
    );
    let err = check_instr(&c, &sst(0, r1())).unwrap_err();
    assert!(matches!(err.root(), TypeError::ClobbersMarker(_)), "{err}");
}

#[test]
fn sld_of_marker_slot_moves_marker() {
    let c = ctx(vec![], stack(vec![cont(nil(), end_int())], nil()), q_i(0));
    let c2 = check_instr(&c, &sld(ra(), 0)).unwrap();
    assert_eq!(c2.q, q_reg(ra()));
}

#[test]
fn sfree_cannot_free_marker_slot() {
    let c = ctx(
        vec![],
        stack(vec![cont(nil(), end_int()), int()], nil()),
        q_i(0),
    );
    let err = check_instr(&c, &sfree(1)).unwrap_err();
    assert!(matches!(err.root(), TypeError::ClobbersMarker(_)), "{err}");
    // Freeing below the marker is fine if the marker is deeper... the
    // marker at slot 1 with sfree 1 would free slot 0 only: allowed, and
    // the marker shifts to 0.
    let c2 = ctx(
        vec![],
        stack(vec![int(), cont(nil(), end_int())], nil()),
        q_i(1),
    );
    let after = check_instr(&c2, &sfree(1)).unwrap();
    assert_eq!(after.q, q_i(0));
}

#[test]
fn salloc_shifts_stack_marker() {
    let c = ctx(vec![], stack(vec![cont(nil(), end_int())], nil()), q_i(0));
    let c2 = check_instr(&c, &salloc(2)).unwrap();
    assert_eq!(c2.q, q_i(2));
    assert_eq!(c2.sigma.visible_len(), 3);
}

#[test]
fn st_cannot_leak_marker_into_heap() {
    let c = ctx(
        vec![
            (r2(), ref_tuple(vec![cont(nil(), end_int())])),
            (ra(), cont(nil(), end_int())),
        ],
        nil(),
        q_reg(ra()),
    );
    let err = check_instr(&c, &st(r2(), 0, ra())).unwrap_err();
    assert!(matches!(err.root(), TypeError::MarkerEscape(_)), "{err}");
}

#[test]
fn alloc_cannot_consume_marker_slot() {
    let c = ctx(
        vec![],
        stack(vec![cont(nil(), end_int()), int()], nil()),
        q_i(0),
    );
    let err = check_instr(&c, &ralloc(r1(), 1)).unwrap_err();
    assert!(matches!(err.root(), TypeError::ClobbersMarker(_)), "{err}");
}

// --- data-flow rules ------------------------------------------------------

#[test]
fn arith_requires_ints() {
    let c = ctx(vec![(r1(), int()), (r2(), unit())], nil(), end_int());
    assert!(check_instr(&c, &add(r3(), r1(), int_v(1))).is_ok());
    assert!(check_instr(&c, &add(r3(), r2(), int_v(1))).is_err());
    assert!(check_instr(&c, &add(r3(), r1(), unit_v())).is_err());
}

#[test]
fn ld_from_box_and_ref() {
    let c = ctx(
        vec![
            (r1(), ref_tuple(vec![int(), unit()])),
            (r2(), box_tuple(vec![unit()])),
        ],
        nil(),
        end_int(),
    );
    let c2 = check_instr(&c, &ld(r3(), r1(), 1)).unwrap();
    assert_eq!(c2.chi.get(r3()), Some(&unit()));
    let c3 = check_instr(&c, &ld(r3(), r2(), 0)).unwrap();
    assert_eq!(c3.chi.get(r3()), Some(&unit()));
    assert!(check_instr(&c, &ld(r3(), r1(), 2)).is_err());
}

#[test]
fn st_requires_ref_and_matching_type() {
    let c = ctx(
        vec![
            (r1(), ref_tuple(vec![int()])),
            (r2(), box_tuple(vec![int()])),
            (r3(), int()),
            (r4(), unit()),
        ],
        nil(),
        end_int(),
    );
    assert!(check_instr(&c, &st(r1(), 0, r3())).is_ok());
    // box is immutable
    assert!(check_instr(&c, &st(r2(), 0, r3())).is_err());
    // wrong field type
    assert!(check_instr(&c, &st(r1(), 0, r4())).is_err());
}

#[test]
fn alloc_from_stack() {
    let c = ctx(vec![], stack(vec![int(), unit()], nil()), end_int());
    let c2 = check_instr(&c, &ralloc(r1(), 2)).unwrap();
    assert_eq!(c2.chi.get(r1()), Some(&ref_tuple(vec![int(), unit()])));
    assert_eq!(c2.sigma, nil());
    let c3 = check_instr(&c, &balloc(r1(), 1)).unwrap();
    assert_eq!(c3.chi.get(r1()), Some(&box_tuple(vec![int()])));
    assert_eq!(c3.sigma, stack(vec![unit()], nil()));
    assert!(check_instr(&c, &ralloc(r1(), 3)).is_err());
}

#[test]
fn unpack_and_unfold() {
    let packed = funtal_syntax::SmallVal::Pack {
        hidden: int(),
        body: Box::new(int_v(7)),
        ann: exists("a", tvar("a")),
    };
    let c = ctx(vec![], nil(), end_int());
    let c2 = check_instr(&c, &unpack("b", r1(), packed)).unwrap();
    assert_eq!(c2.chi.get(r1()), Some(&tvar("b")));
    assert!(c2.delta.binds(&"b".into(), funtal_syntax::Kind::Ty));

    let folded = funtal_syntax::SmallVal::Fold {
        ann: mu("a", int()),
        body: Box::new(int_v(3)),
    };
    let c3 = check_instr(&c, &unfold_i(r1(), folded)).unwrap();
    assert_eq!(c3.chi.get(r1()), Some(&int()));
}

#[test]
fn unpack_rejects_shadowing() {
    let packed = funtal_syntax::SmallVal::Pack {
        hidden: int(),
        body: Box::new(int_v(7)),
        ann: exists("a", tvar("a")),
    };
    let c = TCtx::new(
        HeapTyping::new(),
        Delta::from_decls([d_ty("b")]),
        chi([]),
        nil(),
        end_int(),
    );
    assert!(check_instr(&c, &unpack("b", r1(), packed)).is_err());
}

// --- terminators -----------------------------------------------------------

#[test]
fn halt_checks_everything() {
    let c = ctx(vec![(r1(), int())], nil(), end_int());
    assert!(check_terminator(&c, &halt(int(), nil(), r1())).is_ok());
    // wrong value type
    assert!(check_terminator(&c, &halt(unit(), nil(), r1())).is_err());
    // wrong stack annotation
    assert!(check_terminator(&c, &halt(int(), stack(vec![int()], nil()), r1())).is_err());
    // marker not end
    let c2 = ctx(
        vec![(r1(), int()), (ra(), cont(nil(), end_int()))],
        nil(),
        q_reg(ra()),
    );
    assert!(check_terminator(&c2, &halt(int(), nil(), r1())).is_err());
}

#[test]
fn ret_requires_marker_register() {
    let c = ctx(
        vec![(r1(), int()), (ra(), cont(nil(), end_int()))],
        nil(),
        q_reg(ra()),
    );
    assert!(check_terminator(&c, &ret(ra(), r1())).is_ok());
    // Returning through a register that is not the marker fails.
    let c2 = TCtx {
        q: q_end(int(), nil()),
        ..c.clone()
    };
    assert!(check_terminator(&c2, &ret(ra(), r1())).is_err());
    // Wrong result register (continuation expects r1).
    assert!(check_terminator(&c, &ret(ra(), r2())).is_err());
    // Stack mismatch with the continuation's expectation.
    let c3 = TCtx {
        sigma: stack(vec![int()], nil()),
        ..c
    };
    assert!(check_terminator(&c3, &ret(ra(), r1())).is_err());
}

#[test]
fn call_rejects_register_marker() {
    // A caller whose continuation is still in a register must save it
    // before calling (there is no call rule for q = r).
    let callee_ty = code_ty(
        vec![d_stk("z"), d_ret("e")],
        chi([(ra(), cont(zvar("z"), q_var("e")))]),
        zvar("z"),
        q_reg(ra()),
    );
    let mut psi = HeapTyping::new();
    let funtal_syntax::TTy::Boxed(h) = callee_ty else {
        unreachable!()
    };
    psi.insert(
        funtal_syntax::Label::new("l"),
        funtal_syntax::Mutability::Boxed,
        *h,
    );
    let c = TCtx::new(
        psi,
        Delta::new(),
        chi([(ra(), cont(nil(), end_int()))]),
        nil(),
        q_reg(ra()),
    );
    let err = check_terminator(&c, &call(loc("l"), nil(), q_i(0))).unwrap_err();
    assert!(matches!(err.root(), TypeError::BadMarker { .. }), "{err}");
}

#[test]
fn marker_visibility_checked() {
    // A stack marker pointing into the hidden tail is rejected by the
    // sequence judgment.
    let c = ctx(vec![], zvar("z"), q_i(0));
    assert!(check_marker(&c).is_err());
    let c2 = TCtx {
        delta: Delta::from_decls([d_stk("z")]),
        ..ctx(vec![], stack(vec![int()], zvar("z")), q_i(0))
    };
    assert!(check_marker(&c2).is_ok());
}

#[test]
fn ret_type_metafunction() {
    // Register marker.
    let chi_q = chi([(ra(), cont(nil(), end_int()))]);
    let (t, s) = ret_type(&q_reg(ra()), &chi_q, &nil()).unwrap();
    assert_eq!(t, int());
    assert_eq!(s, nil());
    // Stack marker.
    let sigma = stack(vec![cont(zvar("z"), q_var("e"))], zvar("z"));
    let (t2, s2) = ret_type(&q_i(0), &chi([]), &sigma).unwrap();
    assert_eq!(t2, int());
    assert_eq!(s2, zvar("z"));
    // End marker.
    let (t3, _) = ret_type(&end_int(), &chi([]), &nil()).unwrap();
    assert_eq!(t3, int());
    // Abstract marker has no ret-type.
    assert!(ret_type(&q_var("e"), &chi([]), &nil()).is_err());
}

// --- whole sequences --------------------------------------------------------

#[test]
fn simple_sequence_checks() {
    // mv r1, 21; add r1, r1, r1... using an immediate: mul r1, r1, 2;
    // halt int, * {r1} under end{int; *}.
    let c = ctx(vec![], nil(), end_int());
    let s = seq(
        vec![mv(r1(), int_v(21)), mul(r1(), r1(), int_v(2))],
        halt(int(), nil(), r1()),
    );
    assert!(check_seq(c, &s).is_ok());
}

#[test]
fn import_rejected_in_pure_t() {
    let c = ctx(vec![], nil(), end_int());
    let s = seq(
        vec![import(r1(), "z", nil(), fint(), fint_e(1))],
        halt(int(), nil(), r1()),
    );
    let err = check_seq(c, &s).unwrap_err();
    assert!(matches!(err.root(), TypeError::MultiLanguage(_)), "{err}");
}
