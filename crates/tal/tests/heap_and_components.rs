//! Component typing details: heap-typing inference, the box-only rule
//! for local fragments, blocks with abstract return markers, and
//! existential/recursive values flowing through components.

use funtal_syntax::build::*;
use funtal_syntax::{HeapTyping, HeapVal, Label, WordVal};
use funtal_tal::check::{check_program, infer_heap_typing, TCtx};
use funtal_tal::error::TypeError;
use funtal_tal::machine::{run_program, Outcome};
use funtal_tal::trace::NullTracer;
use funtal_tal::wf::Delta;

#[test]
fn heap_inference_resolves_tuple_chains() {
    // t2 points to t1; inference needs two passes.
    let heap = vec![
        (
            Label::new("t2"),
            boxed_tuple_v(vec![WordVal::Loc(Label::new("t1")), WordVal::Int(2)]),
        ),
        (Label::new("t1"), boxed_tuple_v(vec![WordVal::Int(1)])),
    ];
    let psi = infer_heap_typing(heap, &HeapTyping::new(), true).unwrap();
    let (_, t2) = psi.get(&Label::new("t2")).unwrap();
    assert_eq!(
        t2,
        &funtal_syntax::HeapTy::Tuple(vec![box_tuple(vec![int()]), int()])
    );
}

#[test]
fn heap_inference_rejects_cycles() {
    let heap = vec![
        (
            Label::new("a"),
            boxed_tuple_v(vec![WordVal::Loc(Label::new("b"))]),
        ),
        (
            Label::new("b"),
            boxed_tuple_v(vec![WordVal::Loc(Label::new("a"))]),
        ),
    ];
    let err = infer_heap_typing(heap, &HeapTyping::new(), true).unwrap_err();
    assert!(matches!(err.root(), TypeError::HeapInference(_)), "{err}");
}

#[test]
fn local_fragments_must_be_box() {
    // Fig 2: all component-local bindings must be box; a ref tuple is
    // rejected (statically-defined mutable tuples belong to the global
    // memory, per the §6 discussion).
    let comp = tcomp(
        seq(vec![mv(r1(), int_v(0))], halt(int(), nil(), r1())),
        vec![("cell", ref_tuple_v(vec![WordVal::Int(0)]))],
    );
    let err = check_program(&comp, &int()).unwrap_err();
    assert!(matches!(err.root(), TypeError::LocalHeapNotBox(_)), "{err}");
}

#[test]
fn component_with_boxed_data_works() {
    // A component shipping a lookup table as a boxed tuple.
    let comp = tcomp(
        seq(
            vec![mv(r2(), loc("table")), ld(r1(), r2(), 1)],
            halt(int(), nil(), r1()),
        ),
        vec![(
            "table",
            boxed_tuple_v(vec![WordVal::Int(10), WordVal::Int(20), WordVal::Int(30)]),
        )],
    );
    check_program(&comp, &int()).unwrap();
    assert_eq!(
        run_program(&comp, 100, &mut NullTracer).unwrap(),
        Outcome::Halted(WordVal::Int(20))
    );
}

#[test]
fn local_block_with_abstract_marker_allowed() {
    // §3: "a component can have local blocks with abstract return
    // markers" — a helper block whose marker is its own bound ε, only
    // ever jumped to with the marker instantiated.
    let helper = code_block(
        vec![d_stk("z"), d_ret("e")],
        chi([(r1(), int())]),
        zvar("z"),
        q_var("e"),
        seq(
            vec![add(r1(), r1(), int_v(5))],
            jmp(loc_i("finish", vec![i_stk(zvar("z")), i_ret(q_var("e"))])),
        ),
    );
    // Simplest closed exit: a block with concrete end marker.
    let end_block = code_block(
        vec![],
        chi([(r1(), int())]),
        nil(),
        q_end(int(), nil()),
        seq(vec![], halt(int(), nil(), r1())),
    );
    let comp = tcomp(
        seq(
            vec![mv(r1(), int_v(8))],
            jmp(loc_i(
                "helper",
                vec![i_stk(nil()), i_ret(q_end(int(), nil()))],
            )),
        ),
        vec![
            ("helper", helper),
            (
                // Can't halt or ret under an abstract marker — but CAN
                // keep jumping within the same marker, so `finish` only
                // jumps onward to a concrete exit.
                "finish",
                code_block(
                    vec![d_stk("z"), d_ret("e")],
                    chi([(r1(), int())]),
                    zvar("z"),
                    q_var("e"),
                    seq(
                        vec![mul(r1(), r1(), int_v(2))],
                        jmp(loc_i("exit", vec![i_stk(zvar("z")), i_ret(q_var("e"))])),
                    ),
                ),
            ),
            ("exit", end_block),
        ],
    );
    // "exit" has a *concrete* end marker but is jumped to with the
    // abstract ε instantiated... which must match. This does NOT check:
    // ε-marked jmp targets a block declared with end marker only works
    // when ε is already concrete at the jump site (it is not, inside
    // finish). The checker must reject it.
    assert!(check_program(&comp, &int()).is_err());

    // The *correct* construction: finish jumps to a ∀-marker block are
    // impossible to close without ret/call; so the canonical use of
    // abstract markers is helpers that eventually `ret` through a
    // register continuation (as ℓ2/ℓ2aux in Fig 3 do). Verified there.
}

#[test]
fn existentials_flow_through_components() {
    // Pack an int as ∃a.a, ship it, unpack, and (since a is abstract)
    // just repack and pass along — a client that returns the package
    // unchanged.
    let comp = tcomp(
        seq(
            vec![
                mv(
                    r1(),
                    funtal_syntax::SmallVal::Pack {
                        hidden: int(),
                        body: Box::new(int_v(99)),
                        ann: exists("a", tvar("a")),
                    },
                ),
                unpack("b", r2(), reg(r1())),
                // r2 : b — abstract; we can move it around but not add.
                mv(r3(), reg(r2())),
            ],
            halt(exists("a", tvar("a")), nil(), r1()),
        ),
        vec![],
    );
    check_program(&comp, &exists("a", tvar("a"))).unwrap();
    let out = run_program(&comp, 100, &mut NullTracer).unwrap();
    match out {
        Outcome::Halted(WordVal::Pack { body, .. }) => {
            assert_eq!(*body, WordVal::Int(99))
        }
        other => panic!("expected a package, got {other:?}"),
    }
}

#[test]
fn abstract_values_cannot_be_inspected() {
    // Adding to an unpacked abstract value is ill-typed.
    let comp = tcomp(
        seq(
            vec![
                mv(
                    r1(),
                    funtal_syntax::SmallVal::Pack {
                        hidden: int(),
                        body: Box::new(int_v(1)),
                        ann: exists("a", tvar("a")),
                    },
                ),
                unpack("b", r2(), reg(r1())),
                add(r3(), r2(), int_v(1)),
            ],
            halt(int(), nil(), r3()),
        ),
        vec![],
    );
    assert!(check_program(&comp, &int()).is_err());
}

#[test]
fn recursive_word_values() {
    // µa.box⟨int, a⟩-style streams: fold a tuple pointer once and
    // unfold it back.
    let mu_ty = mu("a", box_tuple(vec![int(), tvar("a")]));
    // The heap knot: node -> <1, fold node> requires the label's own
    // type; build it in the global memory instead via a component that
    // allocates.
    let comp = tcomp(
        seq(
            vec![
                // fold unit-style base impossible for this type; use a
                // one-node cycle through the *runtime* heap:
                mv(r1(), int_v(5)),
                salloc(1),
                sst(0, r1()),
                balloc(r2(), 1), // box<int>
                mv(
                    r3(),
                    funtal_syntax::SmallVal::Fold {
                        ann: mu("a", box_tuple(vec![int()])),
                        body: Box::new(reg(r2())),
                    },
                ),
                unfold_i(r4(), reg(r3())),
                ld(r1(), r4(), 0),
            ],
            halt(int(), nil(), r1()),
        ),
        vec![],
    );
    let _ = mu_ty;
    check_program(&comp, &int()).unwrap();
    assert_eq!(
        run_program(&comp, 100, &mut NullTracer).unwrap(),
        Outcome::Halted(WordVal::Int(5))
    );
}

#[test]
fn guard_mode_runs_clean_programs() {
    use funtal_tal::machine::{step_seq_opts, MachineOpts, Memory, TStep};
    let prog = funtal_tal::figures::fig3_call_to_call();
    let mut mem = Memory::new();
    let mut seq0 = mem.merge_fragment(&prog);
    let opts = MachineOpts { guard: true };
    for _ in 0..1_000 {
        match step_seq_opts(&mut mem, seq0, &mut NullTracer, opts).unwrap() {
            TStep::Next(n) => seq0 = n,
            TStep::Halted { val, .. } => {
                assert_eq!(val, WordVal::Int(2));
                return;
            }
        }
    }
    panic!("did not halt");
}

#[test]
fn tctx_breadcrumbs_locate_errors() {
    // Errors carry instruction positions for diagnostics.
    let ctx = TCtx::new(
        HeapTyping::new(),
        Delta::new(),
        chi([]),
        nil(),
        q_end(int(), nil()),
    );
    let bad = seq(
        vec![mv(r1(), int_v(1)), add(r1(), r2(), int_v(1))],
        halt(int(), nil(), r1()),
    );
    let err = funtal_tal::check::check_seq(ctx, &bad).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("instruction 1"), "{msg}");
    assert!(msg.contains("add"), "{msg}");
}

#[test]
fn heap_val_smoke() {
    // HeapVal displays and compares sensibly (Debug nonempty etc.).
    let hv: HeapVal = boxed_tuple_v(vec![WordVal::Int(1)]);
    assert_eq!(hv.to_string(), "box <1>");
    let hv2 = ref_tuple_v(vec![WordVal::Unit]);
    assert_eq!(hv2.to_string(), "ref <()>");
}
