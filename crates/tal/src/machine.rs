//! The T abstract machine: memories `M = (H, R, S)` and the small-step
//! relation `⟨M | e⟩ ↦ ⟨M' | e'⟩` of §3.
//!
//! The machine is *type-passing*: jumping to a polymorphic block
//! substitutes the concrete instantiations into the block body, so every
//! intermediate configuration is a well-formed syntax tree. This is what
//! lets the dynamic type-safety guard (E11 in DESIGN.md) compare runtime
//! state against block preconditions.

use std::collections::BTreeMap;
use std::sync::Arc;

use funtal_syntax::rename::{rename_heap_val, rename_seq};
use funtal_syntax::subst::Subst;
use funtal_syntax::{
    HeapFrag, HeapVal, Inst, Instr, InstrSeq, Label, Mutability, Reg, SmallVal, TComp, Terminator,
    WordVal,
};

use crate::error::{RResult, RuntimeError};
use crate::trace::{Event, Tracer};

/// The runtime stack `S`. Slot 0 is the top of the stack, matching the
/// static convention.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Stack(Vec<WordVal>);

impl Stack {
    /// An empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of words on the stack.
    pub fn depth(&self) -> usize {
        self.0.len()
    }

    /// Pushes a word on top.
    pub fn push(&mut self, w: WordVal) {
        self.0.push(w);
    }

    /// Pops the top word.
    pub fn pop(&mut self) -> RResult<WordVal> {
        self.0
            .pop()
            .ok_or(RuntimeError::StackUnderflow { need: 1, have: 0 })
    }

    /// Pops the top `n` words, top first.
    pub fn pop_n(&mut self, n: usize) -> RResult<Vec<WordVal>> {
        if self.0.len() < n {
            return Err(RuntimeError::StackUnderflow {
                need: n,
                have: self.0.len(),
            });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.0.pop().expect("length checked"));
        }
        Ok(out)
    }

    /// Reads slot `i` (0 = top).
    pub fn get(&self, i: usize) -> RResult<&WordVal> {
        let len = self.0.len();
        if i < len {
            Ok(&self.0[len - 1 - i])
        } else {
            Err(RuntimeError::BadStackIndex(i))
        }
    }

    /// Writes slot `i` (0 = top).
    pub fn set(&mut self, i: usize, w: WordVal) -> RResult<()> {
        let len = self.0.len();
        if i < len {
            self.0[len - 1 - i] = w;
            Ok(())
        } else {
            Err(RuntimeError::BadStackIndex(i))
        }
    }

    /// An iterator over the words, top first.
    pub fn iter_top_first(&self) -> impl Iterator<Item = &WordVal> {
        self.0.iter().rev()
    }
}

/// A memory `M = (H, R, S)`.
///
/// Heap values are shared ([`Arc`]) so that merging a component's local
/// fragment — which happens every time a boundary is crossed — costs a
/// reference bump per block instead of a deep clone; `st` uses
/// copy-on-write.
#[derive(Clone, Debug, Default)]
pub struct Memory {
    /// The global heap `H`.
    pub heap: BTreeMap<Label, Arc<HeapVal>>,
    /// The register file `R`.
    pub regs: BTreeMap<Reg, WordVal>,
    /// The stack `S`.
    pub stack: Stack,
    next_fresh: u64,
}

impl Memory {
    /// An empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// A memory with an initial global heap.
    pub fn with_heap(heap: impl IntoIterator<Item = (Label, HeapVal)>) -> Self {
        Memory {
            heap: heap.into_iter().map(|(l, v)| (l, Arc::new(v))).collect(),
            ..Self::default()
        }
    }

    /// Reads a register.
    pub fn reg(&self, r: Reg) -> RResult<&WordVal> {
        self.regs.get(&r).ok_or(RuntimeError::UnboundReg(r))
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: Reg, w: WordVal) {
        self.regs.insert(r, w);
    }

    /// Looks up a heap value.
    pub fn heap_get(&self, l: &Label) -> RResult<&HeapVal> {
        self.heap
            .get(l)
            .map(|v| &**v)
            .ok_or_else(|| RuntimeError::UnboundLabel(l.clone()))
    }

    /// Looks up a heap value, returning the shared handle.
    pub fn heap_get_shared(&self, l: &Label) -> RResult<&Arc<HeapVal>> {
        self.heap
            .get(l)
            .ok_or_else(|| RuntimeError::UnboundLabel(l.clone()))
    }

    /// The fresh-label counter (used by the environment-strategy
    /// machine to mirror this memory's label generation exactly).
    pub fn fresh_counter(&self) -> u64 {
        self.next_fresh
    }

    /// Overwrites the fresh-label counter.
    pub fn set_fresh_counter(&mut self, n: u64) {
        self.next_fresh = n;
    }

    /// Allocates a fresh label. Generated names contain `$`, which the
    /// concrete syntax rejects, so they cannot collide with source
    /// labels.
    pub fn fresh_label(&mut self, hint: &str) -> Label {
        let n = self.next_fresh;
        self.next_fresh += 1;
        Label::new(format!("{hint}${n}"))
    }

    /// Allocates a heap value at a fresh label and returns the label.
    pub fn alloc(&mut self, hint: &str, hv: HeapVal) -> Label {
        let l = self.fresh_label(hint);
        self.heap.insert(l.clone(), Arc::new(hv));
        l
    }

    /// Merges a component-local heap fragment into the global heap and
    /// returns the (possibly renamed) entry sequence.
    ///
    /// This is the operational "merge local heap fragments to the global
    /// heap" step of §3. Labels that collide with existing heap entries
    /// are freshened (this happens when the same boundary component is
    /// evaluated more than once); non-colliding labels keep their names
    /// so traces stay readable.
    pub fn merge_fragment(&mut self, comp: &TComp) -> InstrSeq {
        if comp.heap.is_empty() {
            return comp.seq.clone();
        }
        let colliding: Vec<Label> = comp
            .heap
            .iter()
            .filter(|(l, _)| self.heap.contains_key(*l))
            .map(|(l, _)| l.clone())
            .collect();
        let renaming: BTreeMap<Label, Label> = colliding
            .into_iter()
            .map(|l| {
                let fresh = self.fresh_label(l.as_str());
                (l, fresh)
            })
            .collect();
        for (l, hv) in comp.heap.iter_shared() {
            // Untouched blocks are shared; only renamed ones are rebuilt.
            let renamed = if renaming.is_empty() {
                hv.clone()
            } else {
                Arc::new(rename_heap_val(hv, &renaming))
            };
            let target = renaming.get(l).cloned().unwrap_or_else(|| l.clone());
            self.heap.insert(target, renamed);
        }
        if renaming.is_empty() {
            comp.seq.clone()
        } else {
            rename_seq(&comp.seq, &renaming)
        }
    }
}

/// Evaluates a small value to a word value.
pub fn eval_small(mem: &Memory, u: &SmallVal) -> RResult<WordVal> {
    match u {
        SmallVal::Reg(r) => mem.reg(*r).cloned(),
        SmallVal::Word(w) => Ok(w.clone()),
        SmallVal::Pack { hidden, body, ann } => Ok(WordVal::Pack {
            hidden: hidden.clone(),
            body: Box::new(eval_small(mem, body)?),
            ann: ann.clone(),
        }),
        SmallVal::Fold { ann, body } => Ok(WordVal::Fold {
            ann: ann.clone(),
            body: Box::new(eval_small(mem, body)?),
        }),
        SmallVal::Inst { body, args } => Ok(eval_small(mem, body)?.instantiate(args.clone())),
    }
}

fn as_int(w: &WordVal) -> RResult<i64> {
    match w {
        WordVal::Int(n) => Ok(*n),
        other => Err(RuntimeError::NotInt(other.to_string())),
    }
}

fn as_loc(w: &WordVal) -> RResult<&Label> {
    match w {
        WordVal::Loc(l) => Ok(l),
        other => Err(RuntimeError::NotTuple(other.to_string())),
    }
}

/// Resolves a jump operand to a target label plus pending
/// instantiations.
pub fn resolve_target(mem: &Memory, u: &SmallVal) -> RResult<(Label, Vec<Inst>)> {
    let w = eval_small(mem, u)?;
    let (base, insts) = w.peel_insts();
    match base {
        WordVal::Loc(l) => Ok((l.clone(), insts)),
        other => Err(RuntimeError::NotCode(other.to_string())),
    }
}

/// Options controlling machine execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct MachineOpts {
    /// When set, every jump checks the target block's (instantiated)
    /// register-file and stack preconditions against the live memory —
    /// the executable shape of type safety (E11 in DESIGN.md). Violations
    /// raise [`RuntimeError::GuardViolation`]; well-typed programs never
    /// trip the guard.
    pub guard: bool,
}

/// Fetches the block at `label`, fully instantiates its binders with
/// `insts`, and returns the substituted body.
pub fn enter_block(mem: &Memory, label: &Label, insts: &[Inst]) -> RResult<InstrSeq> {
    enter_block_opts(mem, label, insts, MachineOpts::default())
}

/// [`enter_block`] with options (the dynamic type-safety guard).
///
/// The machine is *type-erasing at runtime*: instantiations `ω̄` are
/// arity-checked and then discarded rather than substituted into the
/// block body. No operational rule inspects a substituted type — types
/// only direct the static semantics — and substituting them would blow
/// up exponentially, because a `call`'s protected stack type embeds the
/// continuation type which embeds the protected stack type again (one
/// doubling per recursion depth). The annotations in the returned body
/// are therefore the block's original (possibly open) types; the
/// dynamic guard substitutes the preconditions on demand.
pub fn enter_block_opts(
    mem: &Memory,
    label: &Label,
    insts: &[Inst],
    opts: MachineOpts,
) -> RResult<InstrSeq> {
    let hv = mem.heap_get(label)?;
    let HeapVal::Code(block) = hv else {
        return Err(RuntimeError::NotCode(format!("{label} is a tuple")));
    };
    if block.delta.len() != insts.len() {
        return Err(RuntimeError::BadInstantiation {
            expected: block.delta.len(),
            provided: insts.len(),
        });
    }
    if opts.guard {
        let subst = Subst::from_pairs(
            block
                .delta
                .iter()
                .zip(insts)
                .map(|(d, i)| (d.var.clone(), i.clone())),
        );
        guard_block_entry(
            mem,
            label,
            &subst.chi(&block.chi),
            &subst.stack(&block.sigma),
        )?;
    }
    Ok(block.body.clone())
}

/// The dynamic type-safety guard: checks the live memory against a
/// block's instantiated preconditions. This is a *shape* check — base
/// types are compared exactly, pointers must be locations, and the stack
/// depth must match the visible prefix (exactly, when the tail is
/// concrete).
fn guard_block_entry(
    mem: &Memory,
    label: &Label,
    chi: &funtal_syntax::RegFileTy,
    sigma: &funtal_syntax::StackTy,
) -> RResult<()> {
    use funtal_syntax::{StackTail, TTy};
    for (r, want) in chi.iter() {
        let Some(w) = mem.regs.get(&r) else {
            return Err(RuntimeError::GuardViolation(format!(
                "entering {label}: register {r} required at {want} but uninitialized"
            )));
        };
        let ok = match (want, w.peel_insts().0) {
            (TTy::Int, WordVal::Int(_)) => true,
            (TTy::Unit, WordVal::Unit) => true,
            (TTy::Ref(_) | TTy::Boxed(_), WordVal::Loc(_)) => true,
            (TTy::Int | TTy::Unit, _) => false,
            // Polymorphic/abstract expectations: accept any value.
            _ => true,
        };
        if !ok {
            return Err(RuntimeError::GuardViolation(format!(
                "entering {label}: register {r} required at {want}, holds {w}"
            )));
        }
    }
    let depth = mem.stack.depth();
    let visible = sigma.visible_len();
    let ok = match sigma.tail {
        StackTail::Empty => depth == visible,
        StackTail::Var(_) => depth >= visible,
    };
    if !ok {
        return Err(RuntimeError::GuardViolation(format!(
            "entering {label}: stack typed {sigma} but has depth {depth}"
        )));
    }
    Ok(())
}

/// The result of one machine step on an instruction sequence.
#[derive(Clone, Debug)]
pub enum TStep {
    /// Execution continues with this sequence.
    Next(InstrSeq),
    /// The program halted with the value of the given register.
    Halted {
        /// The result register named by `halt`.
        reg: Reg,
        /// The halt value.
        val: WordVal,
    },
}

/// Executes one pure-T instruction's memory effect (everything except
/// control flow, `bnz`, and the multi-language forms). Shared with the
/// FT machine.
pub fn exec_instr(mem: &mut Memory, instr: &Instr) -> RResult<()> {
    match instr {
        Instr::Arith { op, rd, rs, src } => {
            let a = as_int(mem.reg(*rs)?)?;
            let b = as_int(&eval_small(mem, src)?)?;
            mem.set_reg(*rd, WordVal::Int(op.apply(a, b)));
        }
        Instr::Ld { rd, rs, idx } => {
            let l = as_loc(mem.reg(*rs)?)?.clone();
            let HeapVal::Tuple { fields, .. } = mem.heap_get(&l)? else {
                return Err(RuntimeError::NotTuple(format!("{l} is code")));
            };
            let w = fields
                .get(*idx)
                .ok_or(RuntimeError::BadFieldIndex(*idx))?
                .clone();
            mem.set_reg(*rd, w);
        }
        Instr::St { rd, idx, rs } => {
            let l = as_loc(mem.reg(*rd)?)?.clone();
            let w = mem.reg(*rs)?.clone();
            let hv = mem
                .heap
                .get_mut(&l)
                .map(Arc::make_mut)
                .ok_or_else(|| RuntimeError::UnboundLabel(l.clone()))?;
            let HeapVal::Tuple { mutability, fields } = hv else {
                return Err(RuntimeError::NotTuple(format!("{l} is code")));
            };
            if *mutability != Mutability::Ref {
                return Err(RuntimeError::ImmutableStore(l));
            }
            let slot = fields
                .get_mut(*idx)
                .ok_or(RuntimeError::BadFieldIndex(*idx))?;
            *slot = w;
        }
        Instr::Ralloc { rd, n } | Instr::Balloc { rd, n } => {
            let fields = mem.stack.pop_n(*n)?;
            let mutability = if matches!(instr, Instr::Ralloc { .. }) {
                Mutability::Ref
            } else {
                Mutability::Boxed
            };
            let l = mem.alloc("t", HeapVal::Tuple { mutability, fields });
            mem.set_reg(*rd, WordVal::Loc(l));
        }
        Instr::Mv { rd, src } => {
            let w = eval_small(mem, src)?;
            mem.set_reg(*rd, w);
        }
        Instr::Salloc(n) => {
            for _ in 0..*n {
                mem.stack.push(WordVal::Unit);
            }
        }
        Instr::Sfree(n) => {
            mem.stack.pop_n(*n)?;
        }
        Instr::Sld { rd, idx } => {
            let w = mem.stack.get(*idx)?.clone();
            mem.set_reg(*rd, w);
        }
        Instr::Sst { idx, rs } => {
            let w = mem.reg(*rs)?.clone();
            mem.stack.set(*idx, w)?;
        }
        Instr::Unfold { rd, src } => {
            let w = eval_small(mem, src)?;
            let WordVal::Fold { body, .. } = w else {
                return Err(RuntimeError::NotFold(w.to_string()));
            };
            mem.set_reg(*rd, *body);
        }
        Instr::Unpack { .. } => {
            unreachable!("unpack handled by the sequence stepper (binds a type)")
        }
        Instr::Bnz { .. } => {
            unreachable!("bnz handled by the sequence stepper (control)")
        }
        Instr::Protect { .. } | Instr::Import { .. } => {
            return Err(RuntimeError::MultiLanguage("import/protect"))
        }
    }
    Ok(())
}

/// Performs one step of the pure-T machine on `seq`.
///
/// `import` raises [`RuntimeError::MultiLanguage`]; `protect` has no
/// memory effect (it only affects typing) but still counts — and is
/// traced — as one instruction step.
pub fn step_seq(mem: &mut Memory, seq: InstrSeq, tracer: &mut dyn Tracer) -> RResult<TStep> {
    step_seq_opts(mem, seq, tracer, MachineOpts::default())
}

/// [`step_seq`] with options (the dynamic type-safety guard).
pub fn step_seq_opts(
    mem: &mut Memory,
    mut seq: InstrSeq,
    tracer: &mut dyn Tracer,
    opts: MachineOpts,
) -> RResult<TStep> {
    if !seq.instrs.is_empty() {
        let instr = seq.instrs.remove(0);
        match &instr {
            Instr::Bnz { r, target } => {
                tracer.event(&Event::Instr);
                let n = as_int(mem.reg(*r)?)?;
                if n != 0 {
                    let (l, insts) = resolve_target(mem, target)?;
                    let body = enter_block_opts(mem, &l, &insts, opts)?;
                    tracer.event(&Event::BnzTaken { to: l });
                    return Ok(TStep::Next(body));
                }
                return Ok(TStep::Next(seq));
            }
            Instr::Unpack { rd, src, .. } => {
                // Type-erasing: the witness type is not substituted into
                // the rest of the sequence (nothing operational reads
                // it).
                tracer.event(&Event::Instr);
                let w = eval_small(mem, src)?;
                let WordVal::Pack { body, .. } = w else {
                    return Err(RuntimeError::NotPack(w.to_string()));
                };
                mem.set_reg(*rd, *body);
                return Ok(TStep::Next(seq));
            }
            Instr::Protect { .. } => {
                // Typing-only; no memory effect, but still one machine
                // step — emit `Instr` so every fuel tick has exactly
                // one charging event (the profiler's invariant).
                tracer.event(&Event::Instr);
                return Ok(TStep::Next(seq));
            }
            other => {
                tracer.event(&Event::Instr);
                exec_instr(mem, other)?;
                return Ok(TStep::Next(seq));
            }
        }
    }
    match &seq.term {
        Terminator::Jmp(u) => {
            let (l, insts) = resolve_target(mem, u)?;
            let body = enter_block_opts(mem, &l, &insts, opts)?;
            tracer.event(&Event::Jmp { to: l });
            Ok(TStep::Next(body))
        }
        Terminator::Call { target, sigma, q } => {
            let (l, mut insts) = resolve_target(mem, target)?;
            insts.push(Inst::Stack(sigma.clone()));
            insts.push(Inst::Ret(q.clone()));
            let body = enter_block_opts(mem, &l, &insts, opts)?;
            tracer.event(&Event::Call { to: l });
            Ok(TStep::Next(body))
        }
        Terminator::Ret { target, val } => {
            let (l, insts) = resolve_target(mem, &SmallVal::Reg(*target))?;
            let body = enter_block_opts(mem, &l, &insts, opts)?;
            tracer.event(&Event::Ret { to: l, val: *val });
            Ok(TStep::Next(body))
        }
        Terminator::Halt { val, .. } => {
            let w = mem.reg(*val)?.clone();
            tracer.event(&Event::Halt { reg: *val });
            Ok(TStep::Halted { reg: *val, val: w })
        }
    }
}

/// The final outcome of running a T program under a fuel bound.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// The program halted with this value.
    Halted(WordVal),
    /// The fuel bound was exhausted (the program may diverge).
    OutOfFuel,
}

/// Runs a whole T component to completion (or until `fuel` steps),
/// starting from `mem`.
///
/// The component's local heap fragment is merged (with freshened labels)
/// before execution, as in §3.
pub fn run_component(
    mem: &mut Memory,
    comp: &TComp,
    fuel: u64,
    tracer: &mut dyn Tracer,
) -> RResult<Outcome> {
    let mut seq = mem.merge_fragment(comp);
    for _ in 0..fuel {
        match step_seq(mem, seq, tracer)? {
            TStep::Next(next) => seq = next,
            TStep::Halted { val, .. } => return Ok(Outcome::Halted(val)),
        }
    }
    Ok(Outcome::OutOfFuel)
}

/// Convenience wrapper: run a closed T program in a fresh memory.
pub fn run_program(comp: &TComp, fuel: u64, tracer: &mut dyn Tracer) -> RResult<Outcome> {
    let mut mem = Memory::new();
    run_component(&mut mem, comp, fuel, tracer)
}

/// Lifts a component-local heap fragment into a memory without
/// freshening (for whole programs whose labels are meaningful).
pub fn preload_heap(mem: &mut Memory, frag: &HeapFrag) {
    for (l, hv) in frag.iter_shared() {
        mem.heap.insert(l.clone(), hv.clone());
    }
}
