//! Type environments `∆` and well-formedness judgments (`∆ ⊢ τ`,
//! `∆ ⊢ σ`, `∆ ⊢ q`, ...), plus kind-checked instantiation of `∀[∆]`
//! binders.

use funtal_syntax::subst::Subst;
use funtal_syntax::{
    CodeTy, FTy, HeapTy, Inst, Kind, RegFileTy, RetMarker, StackTail, StackTy, TTy, TyVar,
    TyVarDecl,
};

use crate::error::{TResult, TypeError};

/// A type environment `∆`: an ordered list of kinded binders
/// (later entries shadow earlier ones).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Delta(Vec<TyVarDecl>);

impl Delta {
    /// The empty environment.
    pub fn new() -> Self {
        Delta(Vec::new())
    }

    /// Builds an environment from decls.
    pub fn from_decls(decls: impl IntoIterator<Item = TyVarDecl>) -> Self {
        Delta(decls.into_iter().collect())
    }

    /// The kind of `v`, if bound.
    pub fn lookup(&self, v: &TyVar) -> Option<Kind> {
        self.0.iter().rev().find(|d| &d.var == v).map(|d| d.kind)
    }

    /// True if `v` is bound at kind `k`.
    pub fn binds(&self, v: &TyVar, k: Kind) -> bool {
        self.lookup(v) == Some(k)
    }

    /// Returns an extended environment.
    pub fn extended(&self, decl: TyVarDecl) -> Self {
        let mut d = self.clone();
        d.0.push(decl);
        d
    }

    /// Returns an environment extended with all of `decls`.
    pub fn extended_all(&self, decls: &[TyVarDecl]) -> Self {
        let mut d = self.clone();
        d.0.extend(decls.iter().cloned());
        d
    }

    /// Iterates over the binders, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TyVarDecl> {
        self.0.iter()
    }

    /// Number of binders.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if no binders.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Checks that a binder list has no duplicate names (generated code uses
/// fresh names; duplicate binders in one `∀` are almost always a bug in
/// the input program).
pub fn check_distinct(decls: &[TyVarDecl]) -> TResult<()> {
    for (i, d) in decls.iter().enumerate() {
        if decls[..i].iter().any(|e| e.var == d.var) {
            return Err(TypeError::DuplicateTyVar(d.var.clone()));
        }
    }
    Ok(())
}

/// `∆ ⊢ τ` for T value types.
pub fn wf_tty(delta: &Delta, t: &TTy) -> TResult<()> {
    match t {
        TTy::Var(v) => {
            if delta.binds(v, Kind::Ty) {
                Ok(())
            } else {
                Err(TypeError::UnboundTyVar(v.clone()))
            }
        }
        TTy::Unit | TTy::Int => Ok(()),
        TTy::Exists(v, body) | TTy::Rec(v, body) => {
            wf_tty(&delta.extended(TyVarDecl::ty(v.clone())), body)
        }
        TTy::Ref(ts) => ts.iter().try_for_each(|t| wf_tty(delta, t)),
        TTy::Boxed(h) => wf_heap_ty(delta, h),
    }
}

/// `∆ ⊢ ψ` for heap types.
pub fn wf_heap_ty(delta: &Delta, h: &HeapTy) -> TResult<()> {
    match h {
        HeapTy::Tuple(ts) => ts.iter().try_for_each(|t| wf_tty(delta, t)),
        HeapTy::Code(c) => wf_code_ty(delta, c),
    }
}

/// `∆ ⊢ ∀[∆'].{χ;σ}q`.
///
/// Beyond scoping, this checks that a register marker names a register
/// present in `χ` and a stack-index marker points at a visible slot of
/// `σ`.
pub fn wf_code_ty(delta: &Delta, c: &CodeTy) -> TResult<()> {
    check_distinct(&c.delta)?;
    let inner = delta.extended_all(&c.delta);
    wf_chi(&inner, &c.chi)?;
    wf_stack(&inner, &c.sigma)?;
    wf_ret(&inner, &c.q)?;
    match &c.q {
        RetMarker::Reg(r) if c.chi.get(*r).is_none() => {
            return Err(TypeError::UnboundReg(*r).at("code type return marker"));
        }
        RetMarker::Stack(i) if c.sigma.get(*i).is_none() => {
            return Err(TypeError::BadStackIndex {
                idx: *i,
                visible: c.sigma.visible_len(),
            }
            .at("code type return marker"));
        }
        _ => {}
    }
    Ok(())
}

/// `∆ ⊢ χ`.
pub fn wf_chi(delta: &Delta, chi: &RegFileTy) -> TResult<()> {
    for (r, t) in chi.iter() {
        wf_tty(delta, t).map_err(|e| e.at(format!("type of {r}")))?;
    }
    Ok(())
}

/// `∆ ⊢ σ`.
pub fn wf_stack(delta: &Delta, s: &StackTy) -> TResult<()> {
    for t in &s.prefix {
        wf_tty(delta, t)?;
    }
    match &s.tail {
        StackTail::Empty => Ok(()),
        StackTail::Var(v) => {
            if delta.binds(v, Kind::Stack) {
                Ok(())
            } else {
                Err(TypeError::UnboundTyVar(v.clone()))
            }
        }
    }
}

/// `∆ ⊢ q` (scoping only; positional checks live in [`wf_code_ty`] and
/// the instruction judgments).
pub fn wf_ret(delta: &Delta, q: &RetMarker) -> TResult<()> {
    match q {
        RetMarker::Reg(_) | RetMarker::Stack(_) | RetMarker::Out => Ok(()),
        RetMarker::Var(v) => {
            if delta.binds(v, Kind::Ret) {
                Ok(())
            } else {
                Err(TypeError::UnboundTyVar(v.clone()))
            }
        }
        RetMarker::End { ty, sigma } => {
            wf_tty(delta, ty)?;
            wf_stack(delta, sigma)
        }
    }
}

/// `∆ ⊢ ω`.
pub fn wf_inst(delta: &Delta, i: &Inst) -> TResult<()> {
    match i {
        Inst::Ty(t) => wf_tty(delta, t),
        Inst::Stack(s) => wf_stack(delta, s),
        Inst::Ret(q) => wf_ret(delta, q),
    }
}

/// `∆ ⊢ τ` for F types (used by the FT checker; lives here because `∆`
/// does).
pub fn wf_fty(delta: &Delta, t: &FTy) -> TResult<()> {
    match t {
        FTy::Var(v) => {
            if delta.binds(v, Kind::Ty) {
                Ok(())
            } else {
                Err(TypeError::UnboundTyVar(v.clone()))
            }
        }
        FTy::Unit | FTy::Int => Ok(()),
        FTy::Arrow {
            params,
            phi_in,
            phi_out,
            ret,
        } => {
            params.iter().try_for_each(|t| wf_fty(delta, t))?;
            phi_in.iter().try_for_each(|t| wf_tty(delta, t))?;
            phi_out.iter().try_for_each(|t| wf_tty(delta, t))?;
            wf_fty(delta, ret)
        }
        FTy::Rec(v, body) => wf_fty(&delta.extended(TyVarDecl::ty(v.clone())), body),
        FTy::Tuple(ts) => ts.iter().try_for_each(|t| wf_fty(delta, t)),
    }
}

/// Kind-checks instantiations `ω̄` against a binder prefix of `∆'` and
/// builds the corresponding substitution, returning the remaining
/// (uninstantiated) binders.
///
/// Each instantiation must be well-formed under `delta`.
pub fn apply_insts<'d>(
    delta: &Delta,
    binders: &'d [TyVarDecl],
    args: &[Inst],
) -> TResult<(Subst, &'d [TyVarDecl])> {
    if args.len() > binders.len() {
        return Err(TypeError::BadInstantiation(format!(
            "{} instantiations for {} binders",
            args.len(),
            binders.len()
        )));
    }
    let mut subst = Subst::new();
    for (decl, arg) in binders.iter().zip(args) {
        if decl.kind != arg.kind() {
            return Err(TypeError::BadInstantiation(format!(
                "variable {} has kind {} but instantiation {arg} has kind {}",
                decl.var,
                decl.kind,
                arg.kind()
            )));
        }
        wf_inst(delta, arg)?;
        // Earlier instantiations may appear in later ones only through
        // the *types themselves*, which are closed w.r.t. the binder
        // list; apply the accumulated substitution to keep telescopes
        // working.
        subst.insert(decl.var.clone(), subst_inst(&subst, arg));
    }
    Ok((subst, &binders[args.len()..]))
}

fn subst_inst(s: &Subst, i: &Inst) -> Inst {
    match i {
        Inst::Ty(t) => Inst::Ty(s.tty(t)),
        Inst::Stack(st) => Inst::Stack(s.stack(st)),
        Inst::Ret(q) => Inst::Ret(s.ret(q)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funtal_syntax::build::*;

    #[test]
    fn wf_closed_types() {
        let d = Delta::new();
        assert!(wf_tty(&d, &int()).is_ok());
        assert!(wf_tty(&d, &mu("a", tvar("a"))).is_ok());
        assert!(wf_tty(&d, &tvar("a")).is_err());
    }

    #[test]
    fn wf_kinds_distinguished() {
        let d = Delta::from_decls([d_stk("z")]);
        // z is a stack variable, not a type variable.
        assert!(wf_tty(&d, &tvar("z")).is_err());
        assert!(wf_stack(&d, &zvar("z")).is_ok());
        assert!(wf_ret(&d, &q_var("z")).is_err());
    }

    #[test]
    fn wf_code_marker_positions() {
        let d = Delta::new();
        // Marker names a register present in chi: ok.
        let ok = CodeTy {
            delta: vec![],
            chi: chi([(r1(), int())]),
            sigma: nil(),
            q: q_reg(r1()),
        };
        assert!(wf_code_ty(&d, &ok).is_ok());
        // Marker names an absent register: error.
        let bad = CodeTy {
            chi: chi([]),
            ..ok.clone()
        };
        assert!(wf_code_ty(&d, &bad).is_err());
        // Stack marker beyond the visible prefix: error.
        let bad2 = CodeTy {
            chi: chi([]),
            sigma: nil(),
            q: q_i(0),
            delta: vec![],
        };
        assert!(wf_code_ty(&d, &bad2).is_err());
    }

    #[test]
    fn apply_insts_kind_checks() {
        let d = Delta::new();
        let binders = [d_stk("z"), d_ret("e")];
        // Correct kinds.
        let ok = apply_insts(&d, &binders, &[i_stk(nil()), i_ret(q_end(int(), nil()))]);
        assert!(ok.is_ok());
        assert_eq!(ok.unwrap().1.len(), 0);
        // Wrong kind.
        assert!(apply_insts(&d, &binders, &[i_ty(int())]).is_err());
        // Too many.
        assert!(apply_insts(
            &d,
            &binders,
            &[i_stk(nil()), i_ret(q_end(int(), nil())), i_ty(int())]
        )
        .is_err());
        // Partial application leaves a remainder.
        let (_, rest) = apply_insts(&d, &binders, &[i_stk(nil())]).unwrap();
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn duplicate_binders_rejected() {
        assert!(check_distinct(&[d_stk("z"), d_ret("z")]).is_err());
        assert!(check_distinct(&[d_stk("z"), d_ret("e")]).is_ok());
    }
}
