//! Control-flow tracing.
//!
//! The machines emit an [`Event`] at every control transfer, which is how
//! the repository regenerates the paper's control-flow diagrams (Fig 4
//! and Fig 12) and how benchmarks count machine steps.

use std::fmt;

use funtal_syntax::{FTy, Label, Reg};

/// A control-flow event emitted by the T machine or the FT machine.
///
/// The first five variants are pure-T (Fig 4); the rest are emitted only
/// by the multi-language machine (Fig 12).
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// An intra-component `jmp` landed on a block.
    Jmp {
        /// Target label.
        to: Label,
    },
    /// A `call` transferred to a component.
    Call {
        /// Target label.
        to: Label,
    },
    /// A `ret` jumped back through a continuation.
    Ret {
        /// Continuation label.
        to: Label,
        /// Register carrying the result.
        val: Reg,
    },
    /// A taken `bnz`.
    BnzTaken {
        /// Target label.
        to: Label,
    },
    /// The machine halted with a value in a register.
    Halt {
        /// The result register.
        reg: Reg,
    },
    /// One T instruction executed (useful for step counting).
    Instr,
    /// Evaluation crossed into a `τFT` boundary (T component begins).
    BoundaryEnter {
        /// The boundary's F type.
        ty: FTy,
    },
    /// A boundary's component halted and its value was translated to F.
    BoundaryExit {
        /// The boundary's F type.
        ty: FTy,
    },
    /// An `import` began evaluating its F expression.
    ImportEnter,
    /// An `import` finished and translated the value into a register.
    ImportExit {
        /// Destination register.
        rd: Reg,
    },
    /// An F β-reduction (application of a lambda).
    FBeta,
    /// One F reduction step that is not a β (δ, if0, proj, unfold).
    FStep,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Jmp { to } => write!(f, "jmp -> {to}"),
            Event::Call { to } => write!(f, "call -> {to}"),
            Event::Ret { to, val } => write!(f, "ret -> {to} ({val})"),
            Event::BnzTaken { to } => write!(f, "bnz -> {to}"),
            Event::Halt { reg } => write!(f, "halt ({reg})"),
            Event::Instr => write!(f, "instr"),
            Event::BoundaryEnter { ty } => write!(f, "FT[{ty}] enter"),
            Event::BoundaryExit { ty } => write!(f, "FT[{ty}] exit"),
            Event::ImportEnter => write!(f, "import enter"),
            Event::ImportExit { rd } => write!(f, "import exit -> {rd}"),
            Event::FBeta => write!(f, "beta"),
            Event::FStep => write!(f, "fstep"),
        }
    }
}

/// Consumes control-flow events.
pub trait Tracer {
    /// Called once per event.
    fn event(&mut self, e: &Event);

    /// False when the tracer discards everything, letting hot loops
    /// skip event construction entirely. Defaults to true.
    fn enabled(&self) -> bool {
        true
    }
}

/// Ignores all events.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn event(&mut self, _e: &Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Records all events.
#[derive(Debug, Default, Clone)]
pub struct VecTracer {
    /// The recorded events, in order.
    pub events: Vec<Event>,
}

impl VecTracer {
    /// A new, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Only the control-transfer events (no `Instr`/`FStep` noise) —
    /// the shape compared against Fig 4 / Fig 12.
    pub fn transfers(&self) -> Vec<&Event> {
        self.events
            .iter()
            .filter(|e| !matches!(e, Event::Instr | Event::FStep | Event::FBeta))
            .collect()
    }
}

impl Tracer for VecTracer {
    fn event(&mut self, e: &Event) {
        self.events.push(e.clone());
    }
}

/// Counts events by class; the cheap tracer used by benchmarks.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountTracer {
    /// T instructions executed.
    pub instrs: u64,
    /// Control transfers (jmp/call/ret/bnz).
    pub transfers: u64,
    /// F reduction steps (β and otherwise).
    pub f_steps: u64,
    /// Boundary crossings (enter + exit + import enter/exit).
    pub crossings: u64,
}

impl CountTracer {
    /// A new, zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total work: instructions plus F steps.
    pub fn total_steps(&self) -> u64 {
        self.instrs + self.f_steps
    }
}

impl Tracer for CountTracer {
    fn event(&mut self, e: &Event) {
        match e {
            Event::Instr => self.instrs += 1,
            Event::Jmp { .. } | Event::Call { .. } | Event::Ret { .. } | Event::BnzTaken { .. } => {
                self.transfers += 1
            }
            Event::FBeta | Event::FStep => self.f_steps += 1,
            Event::BoundaryEnter { .. }
            | Event::BoundaryExit { .. }
            | Event::ImportEnter
            | Event::ImportExit { .. } => self.crossings += 1,
            Event::Halt { .. } => {}
        }
    }
}
