//! The T type system (Fig 2 of the paper): instruction typing
//! `Ψ;∆;χ;σ;q ⊢ ι ⇒ ∆';χ';σ';q'`, sequence typing, terminator rules
//! (including both `call` rules), the `ret-type`/`ret-addr-type`
//! metafunctions, and component typing `Ψ;∆;χ;σ;q ⊢ (I,H) : τ;σ'`.
//!
//! The FT checker reuses everything here via the `*_with` entry points,
//! which accept an extension hook for the multi-language instructions
//! (`import`, `protect`).

use std::collections::BTreeMap;

use funtal_syntax::alpha::{alpha_eq_ret, alpha_eq_stack, alpha_eq_tty};
use funtal_syntax::subst::Subst;
use funtal_syntax::{
    CodeBlock, CodeTy, HeapTy, HeapTyping, HeapVal, Inst, Instr, InstrSeq, Kind, Label, Mutability,
    Reg, RegFileTy, RetMarker, SmallVal, StackTail, StackTy, TComp, TTy, Terminator, TyVar,
};

use crate::error::{TResult, TypeError};
use crate::value_ty::{chi_subtype, type_of_small, type_of_word};
use crate::wf::{check_distinct, wf_chi, wf_ret, wf_stack, wf_tty, Delta};

/// The static context threaded through instruction checking:
/// `Ψ; ∆; χ; σ; q`.
#[derive(Clone, Debug)]
pub struct TCtx {
    /// Heap typing `Ψ`.
    pub psi: HeapTyping,
    /// Type environment `∆`.
    pub delta: Delta,
    /// Register-file typing `χ`.
    pub chi: RegFileTy,
    /// Stack typing `σ`.
    pub sigma: StackTy,
    /// Return marker `q`.
    pub q: RetMarker,
}

impl TCtx {
    /// A fresh context from its five parts.
    pub fn new(
        psi: HeapTyping,
        delta: Delta,
        chi: RegFileTy,
        sigma: StackTy,
        q: RetMarker,
    ) -> Self {
        TCtx {
            psi,
            delta,
            chi,
            sigma,
            q,
        }
    }

    fn reg(&self, r: Reg) -> TResult<&TTy> {
        self.chi.get(r).ok_or(TypeError::UnboundReg(r))
    }

    fn slot(&self, i: usize) -> TResult<&TTy> {
        self.sigma.get(i).ok_or(TypeError::BadStackIndex {
            idx: i,
            visible: self.sigma.visible_len(),
        })
    }

    /// Errors if writing `rd` would clobber the return continuation.
    fn guard_write(&self, rd: Reg, what: &'static str) -> TResult<()> {
        if self.q == RetMarker::Reg(rd) {
            Err(TypeError::ClobbersMarker(what))
        } else {
            Ok(())
        }
    }
}

/// The side condition `·[∆]; χ; σ ⊢ q` on the instruction and sequence
/// judgments: executing code must know where its return continuation
/// lives. Register and stack markers must be visible; abstract markers
/// must be bound by the *enclosing block's* `∆` (which is how
/// component-local blocks may carry abstract markers, §3).
pub fn check_marker(ctx: &TCtx) -> TResult<()> {
    match &ctx.q {
        RetMarker::Reg(r) => ctx.reg(*r).map(|_| ()),
        RetMarker::Stack(i) => ctx.slot(*i).map(|_| ()),
        RetMarker::Var(v) => {
            if ctx.delta.binds(v, Kind::Ret) {
                Ok(())
            } else {
                Err(TypeError::UnboundTyVar(v.clone()))
            }
        }
        RetMarker::End { .. } => wf_ret(&ctx.delta, &ctx.q),
        RetMarker::Out => Err(TypeError::BadMarker {
            found: RetMarker::Out,
            need: "a T return marker (out belongs to F code)",
        }),
    }
}

/// Decomposes a continuation type `box ∀[].{r : τ; σ'}q'`, requiring an
/// empty binder list and exactly one register entry.
fn cont_parts(t: &TTy) -> TResult<(Reg, TTy, StackTy, RetMarker)> {
    let code = t
        .as_code()
        .ok_or_else(|| TypeError::wrong_form("a continuation code pointer", t))?;
    if !code.delta.is_empty() {
        return Err(TypeError::wrong_form(
            "a continuation with no remaining type parameters",
            t,
        ));
    }
    let mut entries = code.chi.iter();
    let (r, ty) = entries
        .next()
        .ok_or_else(|| TypeError::wrong_form("a continuation expecting one register", t))?;
    if entries.next().is_some() {
        return Err(TypeError::wrong_form(
            "a continuation expecting exactly one register",
            t,
        ));
    }
    Ok((r, ty.clone(), code.sigma.clone(), code.q.clone()))
}

/// `ret-type(q, χ, σ) = τ; σ'` (Fig 2): the type of the value passed to
/// the return continuation at `q`, and the stack at that point.
pub fn ret_type(q: &RetMarker, chi: &RegFileTy, sigma: &StackTy) -> TResult<(TTy, StackTy)> {
    match q {
        RetMarker::Reg(r) => {
            let t = chi.get(*r).ok_or(TypeError::UnboundReg(*r))?;
            let (_, ty, s, _) = cont_parts(t)?;
            Ok((ty, s))
        }
        RetMarker::Stack(i) => {
            let t = sigma.get(*i).ok_or(TypeError::BadStackIndex {
                idx: *i,
                visible: sigma.visible_len(),
            })?;
            let (_, ty, s, _) = cont_parts(t)?;
            Ok((ty, s))
        }
        RetMarker::End { ty, sigma } => Ok(((**ty).clone(), sigma.clone())),
        other => Err(TypeError::NoRetType(other.clone())),
    }
}

/// `ret-addr-type(q, χ, σ)` (Fig 2): the full code type of the return
/// continuation at `q` (only defined for register and stack markers).
pub fn ret_addr_type(q: &RetMarker, chi: &RegFileTy, sigma: &StackTy) -> TResult<CodeTy> {
    let t = match q {
        RetMarker::Reg(r) => chi.get(*r).ok_or(TypeError::UnboundReg(*r))?,
        RetMarker::Stack(i) => sigma.get(*i).ok_or(TypeError::BadStackIndex {
            idx: *i,
            visible: sigma.visible_len(),
        })?,
        other => return Err(TypeError::NoRetType(other.clone())),
    };
    t.as_code()
        .cloned()
        .ok_or_else(|| TypeError::wrong_form("a code pointer at the return marker", t))
}

/// Checks a single pure-T instruction, returning the updated context
/// (`Ψ;∆;χ;σ;q ⊢ ι ⇒ ∆';χ';σ';q'`).
///
/// # Errors
///
/// Returns [`TypeError::MultiLanguage`] for `import`/`protect`; the FT
/// checker handles those via the extension hook of
/// [`check_seq_with`].
pub fn check_instr(ctx: &TCtx, instr: &Instr) -> TResult<TCtx> {
    let mut out = ctx.clone();
    match instr {
        Instr::Arith { rd, rs, src, .. } => {
            let ts = ctx.reg(*rs)?;
            if !alpha_eq_tty(ts, &TTy::Int) {
                return Err(TypeError::mismatch("aop first operand", &TTy::Int, ts));
            }
            let tu = type_of_small(&ctx.psi, &ctx.delta, &ctx.chi, src)?;
            if !alpha_eq_tty(&tu, &TTy::Int) {
                return Err(TypeError::mismatch("aop second operand", &TTy::Int, &tu));
            }
            ctx.guard_write(*rd, "aop destination")?;
            out.chi = ctx.chi.update(*rd, TTy::Int);
        }
        Instr::Bnz { r, target } => {
            let tr = ctx.reg(*r)?;
            if !alpha_eq_tty(tr, &TTy::Int) {
                return Err(TypeError::mismatch("bnz register", &TTy::Int, tr));
            }
            check_jump_target(ctx, target, "bnz")?;
        }
        Instr::Ld { rd, rs, idx } => {
            let fields = match ctx.reg(*rs)? {
                TTy::Ref(ts) => ts.clone(),
                TTy::Boxed(h) => match &**h {
                    HeapTy::Tuple(ts) => ts.clone(),
                    other => return Err(TypeError::wrong_form("a tuple pointer", other)),
                },
                other => return Err(TypeError::wrong_form("a tuple pointer", other)),
            };
            let ty = fields
                .get(*idx)
                .ok_or(TypeError::BadFieldIndex {
                    idx: *idx,
                    width: fields.len(),
                })?
                .clone();
            ctx.guard_write(*rd, "ld destination")?;
            out.chi = ctx.chi.update(*rd, ty);
        }
        Instr::St { rd, idx, rs } => {
            if ctx.q == RetMarker::Reg(*rs) {
                return Err(TypeError::MarkerEscape("st of the return continuation"));
            }
            let fields = match ctx.reg(*rd)? {
                TTy::Ref(ts) => ts.clone(),
                other => {
                    return Err(TypeError::wrong_form(
                        "a mutable (ref) tuple pointer",
                        other,
                    ))
                }
            };
            let want = fields.get(*idx).ok_or(TypeError::BadFieldIndex {
                idx: *idx,
                width: fields.len(),
            })?;
            let have = ctx.reg(*rs)?;
            if !alpha_eq_tty(have, want) {
                return Err(TypeError::mismatch("st field", want, have));
            }
        }
        Instr::Ralloc { rd, n } | Instr::Balloc { rd, n } => {
            ctx.guard_write(*rd, "alloc destination")?;
            let (front, rest) = ctx.sigma.split(*n).ok_or_else(|| TypeError::StackShape {
                need: format!("{n} visible slots to allocate from"),
                found: ctx.sigma.clone(),
            })?;
            if let RetMarker::Stack(i) = ctx.q {
                if i < *n {
                    return Err(TypeError::ClobbersMarker("alloc of the marker slot"));
                }
                out.q = RetMarker::Stack(i - n);
            }
            let ty = if matches!(instr, Instr::Ralloc { .. }) {
                TTy::Ref(front)
            } else {
                TTy::boxed_tuple(front)
            };
            out.chi = ctx.chi.update(*rd, ty);
            out.sigma = rest;
        }
        Instr::Mv { rd, src } => {
            // Second rule of Fig 2: moving the continuation moves the
            // marker.
            if let (SmallVal::Reg(rs), RetMarker::Reg(qr)) = (src, &ctx.q) {
                if rs == qr {
                    let ty = ctx.reg(*rs)?.clone();
                    out.chi = ctx.chi.update(*rd, ty);
                    out.q = RetMarker::Reg(*rd);
                    return Ok(out);
                }
            }
            let ty = type_of_small(&ctx.psi, &ctx.delta, &ctx.chi, src)?;
            ctx.guard_write(*rd, "mv destination")?;
            out.chi = ctx.chi.update(*rd, ty);
        }
        Instr::Salloc(n) => {
            let mut s = ctx.sigma.clone();
            for _ in 0..*n {
                s = s.cons(TTy::Unit);
            }
            out.sigma = s;
            out.q = ctx.q.shifted_by(*n as isize);
        }
        Instr::Sfree(n) => {
            let (_, rest) = ctx.sigma.split(*n).ok_or_else(|| TypeError::StackShape {
                need: format!("{n} visible slots to free"),
                found: ctx.sigma.clone(),
            })?;
            if let RetMarker::Stack(i) = ctx.q {
                if i < *n {
                    return Err(TypeError::ClobbersMarker("sfree of the marker slot"));
                }
                out.q = RetMarker::Stack(i - n);
            }
            out.sigma = rest;
        }
        Instr::Sld { rd, idx } => {
            let ty = ctx.slot(*idx)?.clone();
            if ctx.q == RetMarker::Stack(*idx) {
                // Loading the continuation moves the marker into `rd`.
                out.chi = ctx.chi.update(*rd, ty);
                out.q = RetMarker::Reg(*rd);
            } else {
                ctx.guard_write(*rd, "sld destination")?;
                out.chi = ctx.chi.update(*rd, ty);
            }
        }
        Instr::Sst { idx, rs } => {
            let ty = ctx.reg(*rs)?.clone();
            ctx.slot(*idx)?;
            if ctx.q == RetMarker::Reg(*rs) {
                // Storing the continuation moves the marker to slot idx.
                out.sigma = ctx.sigma.set(*idx, ty).expect("slot checked visible");
                out.q = RetMarker::Stack(*idx);
            } else {
                if ctx.q == RetMarker::Stack(*idx) {
                    return Err(TypeError::ClobbersMarker("sst over the marker slot"));
                }
                out.sigma = ctx.sigma.set(*idx, ty).expect("slot checked visible");
            }
        }
        Instr::Unpack { tv, rd, src } => {
            if ctx.delta.lookup(tv).is_some() {
                return Err(TypeError::DuplicateTyVar(tv.clone()));
            }
            let t = type_of_small(&ctx.psi, &ctx.delta, &ctx.chi, src)?;
            let TTy::Exists(a, body) = &t else {
                return Err(TypeError::wrong_form("an existential package", &t));
            };
            ctx.guard_write(*rd, "unpack destination")?;
            let opened = Subst::one(a.clone(), Inst::Ty(TTy::Var(tv.clone()))).tty(body);
            out.delta = ctx.delta.extended(funtal_syntax::TyVarDecl::ty(tv.clone()));
            out.chi = ctx.chi.update(*rd, opened);
        }
        Instr::Unfold { rd, src } => {
            let t = type_of_small(&ctx.psi, &ctx.delta, &ctx.chi, src)?;
            let TTy::Rec(a, body) = &t else {
                return Err(TypeError::wrong_form("a value of recursive type", &t));
            };
            ctx.guard_write(*rd, "unfold destination")?;
            let unrolled = Subst::one(a.clone(), Inst::Ty(t.clone())).tty(body);
            out.chi = ctx.chi.update(*rd, unrolled);
        }
        Instr::Protect { .. } => return Err(TypeError::MultiLanguage("protect")),
        Instr::Import { .. } => return Err(TypeError::MultiLanguage("import")),
    }
    Ok(out)
}

/// Shared precondition check for `jmp`/`bnz` targets: the target must be
/// a fully instantiated code pointer with the same stack type and return
/// marker, and a register file below the current one.
fn check_jump_target(ctx: &TCtx, target: &SmallVal, what: &'static str) -> TResult<()> {
    let t = type_of_small(&ctx.psi, &ctx.delta, &ctx.chi, target)?;
    let code = t
        .as_code()
        .ok_or_else(|| TypeError::wrong_form("a code pointer", &t))?;
    if !code.delta.is_empty() {
        return Err(TypeError::JumpMismatch {
            what: "instantiation",
            expected: "no remaining type parameters".to_string(),
            found: format!("{} remaining", code.delta.len()),
        }
        .at(what));
    }
    if !alpha_eq_ret(&code.q, &ctx.q) {
        return Err(TypeError::JumpMismatch {
            what: "return marker",
            expected: code.q.to_string(),
            found: ctx.q.to_string(),
        }
        .at(what));
    }
    if !alpha_eq_stack(&code.sigma, &ctx.sigma) {
        return Err(TypeError::JumpMismatch {
            what: "stack",
            expected: code.sigma.to_string(),
            found: ctx.sigma.to_string(),
        }
        .at(what));
    }
    chi_subtype(&ctx.chi, &code.chi)?;
    Ok(())
}

/// Checks a terminator (`jmp`, `call`, `ret`, `halt`) against the
/// current context.
pub fn check_terminator(ctx: &TCtx, term: &Terminator) -> TResult<()> {
    match term {
        Terminator::Jmp(u) => check_jump_target(ctx, u, "jmp"),
        Terminator::Ret { target, val } => {
            if ctx.q != RetMarker::Reg(*target) {
                return Err(TypeError::BadMarker {
                    found: ctx.q.clone(),
                    need: "the marker must be the register being returned through",
                });
            }
            let t = ctx.reg(*target)?;
            let (rret, tau, sigma_c, _q_any) = cont_parts(t)?;
            if rret != *val {
                return Err(TypeError::JumpMismatch {
                    what: "return register",
                    expected: rret.to_string(),
                    found: val.to_string(),
                }
                .at("ret"));
            }
            let have = ctx.reg(*val)?;
            if !alpha_eq_tty(have, &tau) {
                return Err(TypeError::mismatch("ret value", &tau, have));
            }
            if !alpha_eq_stack(&sigma_c, &ctx.sigma) {
                return Err(TypeError::JumpMismatch {
                    what: "stack",
                    expected: sigma_c.to_string(),
                    found: ctx.sigma.to_string(),
                }
                .at("ret"));
            }
            Ok(())
        }
        Terminator::Halt { ty, sigma, val } => {
            let RetMarker::End {
                ty: want_ty,
                sigma: want_sigma,
            } = &ctx.q
            else {
                return Err(TypeError::BadMarker {
                    found: ctx.q.clone(),
                    need: "halt requires the end{τ;σ} marker",
                });
            };
            if !alpha_eq_tty(ty, want_ty) {
                return Err(TypeError::mismatch("halt type", want_ty, ty));
            }
            if !alpha_eq_stack(sigma, want_sigma) {
                return Err(TypeError::mismatch(
                    "halt stack annotation",
                    want_sigma,
                    sigma,
                ));
            }
            if !alpha_eq_stack(&ctx.sigma, want_sigma) {
                return Err(TypeError::mismatch(
                    "halt-time stack",
                    want_sigma,
                    &ctx.sigma,
                ));
            }
            let have = ctx.reg(*val)?;
            if !alpha_eq_tty(have, ty) {
                return Err(TypeError::mismatch("halt value", ty, have));
            }
            Ok(())
        }
        Terminator::Call {
            target,
            sigma: sigma0,
            q: qarg,
        } => check_call(ctx, target, sigma0, qarg),
    }
}

/// The two `call` rules of Fig 2 (merged: the halting case and the
/// stack-marker case differ only in how the new marker is computed).
fn check_call(ctx: &TCtx, target: &SmallVal, sigma0: &StackTy, qarg: &RetMarker) -> TResult<()> {
    let t = type_of_small(&ctx.psi, &ctx.delta, &ctx.chi, target)?;
    let code = t
        .as_code()
        .ok_or_else(|| TypeError::wrong_form("a code pointer", &t))?;

    // The callee must abstract exactly its stack tail and return marker:
    // ∀[ζ: stk, ε: ret].
    let (zeta, eps) = match code.delta.as_slice() {
        [z, e] if z.kind == Kind::Stack && e.kind == Kind::Ret => (z.var.clone(), e.var.clone()),
        _ => {
            return Err(TypeError::wrong_form(
                "a callee of type ∀[ζ: stk, ε: ret].{χ;σ}q",
                &t,
            ))
        }
    };

    // σ̂ = τ̄ :: ζ.
    if code.sigma.tail != StackTail::Var(zeta.clone()) {
        return Err(TypeError::wrong_form(
            "a callee whose stack ends in its own abstract tail ζ",
            &code.sigma,
        ));
    }
    let pre = &code.sigma.prefix;

    // σ = τ̄ :: σ0: the current stack splits into the callee's exposed
    // prefix and the protected tail declared by the instruction.
    let (front, rest) = ctx
        .sigma
        .split(pre.len())
        .ok_or_else(|| TypeError::StackShape {
            need: format!("{} exposed slots matching the callee", pre.len()),
            found: ctx.sigma.clone(),
        })?;
    for (have, want) in front.iter().zip(pre) {
        if !alpha_eq_tty(have, want) {
            return Err(TypeError::mismatch("call argument slot", want, have));
        }
    }
    if !alpha_eq_stack(&rest, sigma0) {
        return Err(TypeError::mismatch("call protected tail", sigma0, &rest));
    }
    wf_stack(&ctx.delta, sigma0)?;

    // ∆ ⊢ χ̂ \ q̂: apart from the marker register, the callee's register
    // preconditions may not mention its own ζ/ε.
    let chi_hat_rest = match &code.q {
        RetMarker::Reg(r) => code.chi.without(*r),
        _ => code.chi.clone(),
    };
    wf_chi(&ctx.delta, &chi_hat_rest)
        .map_err(|e| e.at("call: χ̂ \\ q̂ must be well-formed in the caller"))?;

    // ret-addr-type(q̂, χ̂, σ̂) = ∀[].{r : τ; σ̂'}ε.
    let cont = ret_addr_type(&code.q, &code.chi, &code.sigma)?;
    if !cont.delta.is_empty() {
        return Err(TypeError::wrong_form(
            "a callee continuation with an empty ∀",
            &TTy::Boxed(Box::new(HeapTy::Code(cont))),
        ));
    }
    if cont.q != RetMarker::Var(eps.clone()) {
        return Err(TypeError::wrong_form(
            "a callee continuation whose marker is the callee's ε",
            &cont.q,
        ));
    }
    let mut cont_regs = cont.chi.iter();
    let Some((_rret, tau_ret)) = cont_regs.next() else {
        return Err(TypeError::wrong_form(
            "a continuation expecting one register",
            &cont.q,
        ));
    };
    if cont_regs.next().is_some() {
        return Err(TypeError::wrong_form(
            "a continuation expecting exactly one register",
            &cont.q,
        ));
    }
    if cont.sigma.tail != StackTail::Var(zeta.clone()) {
        return Err(TypeError::wrong_form(
            "a continuation stack ending in the callee's ζ",
            &cont.sigma,
        ));
    }
    let pre_out = &cont.sigma.prefix;

    // ∆ ⊢ τ: the result type cannot mention the callee's ζ/ε.
    wf_tty(&ctx.delta, tau_ret).map_err(|e| e.at("call result type"))?;

    // The new marker handed to the callee.
    let qnew = match &ctx.q {
        RetMarker::End { .. } => {
            if !alpha_eq_ret(qarg, &ctx.q) {
                return Err(TypeError::mismatch(
                    "call marker (halting case)",
                    &ctx.q,
                    qarg,
                ));
            }
            qarg.clone()
        }
        RetMarker::Stack(i) => {
            // Fig 2: the marker slot must lie inside the protected tail
            // (i > j with entries τ0..τj, i.e. i ≥ |front|), and the
            // callee's continuation sees it at i + k − j.
            if *i < front.len() {
                return Err(TypeError::BadMarker {
                    found: ctx.q.clone(),
                    need: "the marker slot must be inside the protected tail",
                });
            }
            let expect = RetMarker::Stack(i + pre_out.len() - front.len());
            if !alpha_eq_ret(qarg, &expect) {
                return Err(TypeError::mismatch(
                    "call marker (stack case)",
                    &expect,
                    qarg,
                ));
            }
            expect
        }
        other => {
            return Err(TypeError::BadMarker {
                found: other.clone(),
                need: "call requires an end{τ;σ} or stack-slot marker \
                       (save a register continuation to the stack first)",
            })
        }
    };
    wf_ret(&ctx.delta, &qnew)?;

    // θ = [σ0/ζ][qnew/ε]; the instantiated callee type must be
    // well-formed and above the current register file.
    let theta = Subst::from_pairs([
        (zeta.clone(), Inst::Stack(sigma0.clone())),
        (eps.clone(), Inst::Ret(qnew)),
    ]);
    let chi_inst = theta.chi(&code.chi);
    let sigma_inst = theta.stack(&code.sigma);
    wf_chi(&ctx.delta, &chi_inst).map_err(|e| e.at("call: instantiated χ̂"))?;
    wf_stack(&ctx.delta, &sigma_inst).map_err(|e| e.at("call: instantiated σ̂"))?;
    wf_stack(&ctx.delta, &theta.stack(&cont.sigma)).map_err(|e| e.at("call: instantiated σ̂'"))?;
    chi_subtype(&ctx.chi, &chi_inst)?;
    if !alpha_eq_stack(&sigma_inst, &ctx.sigma) {
        return Err(TypeError::mismatch("call stack", &sigma_inst, &ctx.sigma));
    }
    Ok(())
}

/// An extension hook for multi-language instructions. Returning `None`
/// means "not handled" (the pure-T rules apply); `Some(result)` supplies
/// the updated context.
pub type ExtHook<'a> = dyn FnMut(&TCtx, &Instr) -> Option<TResult<TCtx>> + 'a;

/// Checks an instruction sequence with an extension hook for
/// multi-language instructions.
pub fn check_seq_with(ctx: TCtx, seq: &InstrSeq, ext: &mut ExtHook<'_>) -> TResult<()> {
    let mut ctx = ctx;
    for (i, instr) in seq.instrs.iter().enumerate() {
        check_marker(&ctx).map_err(|e| e.at(format!("instruction {i} ({instr})")))?;
        ctx = match ext(&ctx, instr) {
            Some(res) => res,
            None => check_instr(&ctx, instr),
        }
        .map_err(|e| e.at(format!("instruction {i} ({instr})")))?;
    }
    check_marker(&ctx).map_err(|e| e.at("terminator"))?;
    check_terminator(&ctx, &seq.term).map_err(|e| e.at(format!("terminator ({})", seq.term)))
}

/// Checks a pure-T instruction sequence (`Ψ;∆;χ;σ;q ⊢ I`).
pub fn check_seq(ctx: TCtx, seq: &InstrSeq) -> TResult<()> {
    check_seq_with(ctx, seq, &mut |_, _| None)
}

/// Infers the heap typing `Ψ'` of a heap fragment (`Ψ ⊢ H : Ψ'`).
///
/// Code blocks are self-describing; tuple types are inferred from their
/// fields, iterating to cope with tuples pointing at other labels.
/// When `require_box` is set (component-local fragments, Fig 2), any
/// `ref` tuple is rejected.
pub fn infer_heap_typing(
    heap: impl IntoIterator<Item = (Label, HeapVal)>,
    psi_base: &HeapTyping,
    require_box: bool,
) -> TResult<HeapTyping> {
    let mut out = HeapTyping::new();
    let mut pending: BTreeMap<Label, (Mutability, Vec<funtal_syntax::WordVal>)> = BTreeMap::new();
    for (l, hv) in heap {
        match hv {
            HeapVal::Code(b) => {
                out.insert(
                    l,
                    Mutability::Boxed,
                    HeapTy::Code(CodeTy {
                        delta: b.delta.clone(),
                        chi: b.chi.clone(),
                        sigma: b.sigma.clone(),
                        q: b.q.clone(),
                    }),
                );
            }
            HeapVal::Tuple { mutability, fields } => {
                if require_box && mutability == Mutability::Ref {
                    return Err(TypeError::LocalHeapNotBox(l));
                }
                pending.insert(l, (mutability, fields));
            }
        }
    }
    let delta = Delta::new();
    while !pending.is_empty() {
        let mut progressed = false;
        let labels: Vec<Label> = pending.keys().cloned().collect();
        for l in labels {
            let (m, fields) = &pending[&l];
            let mut combined = psi_base.clone();
            combined.extend(&out);
            let tys: TResult<Vec<TTy>> = fields
                .iter()
                .map(|w| type_of_word(&combined, &delta, w))
                .collect();
            if let Ok(tys) = tys {
                out.insert(l.clone(), *m, HeapTy::Tuple(tys));
                pending.remove(&l);
                progressed = true;
            }
        }
        if !progressed {
            let stuck: Vec<String> = pending.keys().map(|l| l.to_string()).collect();
            return Err(TypeError::HeapInference(format!(
                "unresolvable tuples (cyclic or referencing unbound labels): {}",
                stuck.join(", ")
            )));
        }
    }
    Ok(out)
}

/// Checks one code block under a full heap typing, with an extension
/// hook for multi-language instructions.
pub fn check_block_with(
    psi: &HeapTyping,
    label: &Label,
    block: &CodeBlock,
    ext: &mut ExtHook<'_>,
) -> TResult<()> {
    check_distinct(&block.delta)?;
    let delta = Delta::from_decls(block.delta.iter().cloned());
    wf_chi(&delta, &block.chi).map_err(|e| e.at(format!("block {label} χ")))?;
    wf_stack(&delta, &block.sigma).map_err(|e| e.at(format!("block {label} σ")))?;
    wf_ret(&delta, &block.q).map_err(|e| e.at(format!("block {label} q")))?;
    let ctx = TCtx::new(
        psi.clone(),
        delta,
        block.chi.clone(),
        block.sigma.clone(),
        block.q.clone(),
    );
    check_seq_with(ctx, &block.body, ext).map_err(|e| e.at(format!("block {label}")))
}

/// Checks a pure-T code block.
pub fn check_block(psi: &HeapTyping, label: &Label, block: &CodeBlock) -> TResult<()> {
    check_block_with(psi, label, block, &mut |_, _| None)
}

/// Checks a T component `Ψ;∆;χ;σ;q ⊢ (I,H) : τ;σ'` (Fig 2), with an
/// extension hook, returning the result type and stack from
/// `ret-type(q, χ, σ)`.
pub fn check_component_with(
    ctx: &TCtx,
    comp: &TComp,
    ext: &mut ExtHook<'_>,
) -> TResult<(TTy, StackTy)> {
    let psi_local = infer_heap_typing(
        comp.heap.iter().map(|(l, v)| (l.clone(), v.clone())),
        &ctx.psi,
        true,
    )?;
    let mut psi_full = ctx.psi.clone();
    psi_full.extend(&psi_local);
    for (l, hv) in comp.heap.iter() {
        if let HeapVal::Code(b) = hv {
            check_block_with(&psi_full, l, b, ext)?;
        }
    }
    let result = ret_type(&ctx.q, &ctx.chi, &ctx.sigma)?;
    let main_ctx = TCtx {
        psi: psi_full,
        ..ctx.clone()
    };
    check_seq_with(main_ctx, &comp.seq, ext)?;
    Ok(result)
}

/// Checks a pure-T component.
pub fn check_component(ctx: &TCtx, comp: &TComp) -> TResult<(TTy, StackTy)> {
    check_component_with(ctx, comp, &mut |_, _| None)
}

/// Checks a closed, whole T program: a component executed on an empty
/// stack and register file, halting with `result_ty`.
pub fn check_program(comp: &TComp, result_ty: &TTy) -> TResult<()> {
    let ctx = TCtx::new(
        HeapTyping::new(),
        Delta::new(),
        RegFileTy::new(),
        StackTy::nil(),
        RetMarker::end(result_ty.clone(), StackTy::nil()),
    );
    let (ty, _) = check_component(&ctx, comp)?;
    if !alpha_eq_tty(&ty, result_ty) {
        return Err(TypeError::mismatch("program result", result_ty, &ty));
    }
    Ok(())
}

/// The unused-variable-silencing re-export of the tyvar type (internal).
#[allow(dead_code)]
type _TyVar = TyVar;
