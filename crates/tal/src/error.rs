//! Error types for the T type checker and machine.

use std::fmt;

use funtal_syntax::{Label, Reg, RetMarker, StackTy, TyVar};

/// An error raised by the static semantics of T (and reused by the FT
/// checker for the shared rules).
#[derive(Clone, Debug, PartialEq)]
pub enum TypeError {
    /// A type variable was used but not bound in `∆` (or bound at the
    /// wrong kind).
    UnboundTyVar(TyVar),
    /// A register was read but has no entry in `χ`.
    UnboundReg(Reg),
    /// A heap label is missing from `Ψ`.
    UnboundLabel(Label),
    /// A term variable is missing from `Γ`.
    UnboundVar(String),
    /// Two types that had to agree differ.
    Mismatch {
        /// What was required.
        expected: String,
        /// What was found.
        found: String,
        /// Where the comparison arose.
        what: &'static str,
    },
    /// An operand had the wrong shape (e.g. `unfold` of a non-recursive
    /// type).
    WrongForm {
        /// What was required.
        expected: &'static str,
        /// What was found.
        found: String,
    },
    /// The register-file subtyping `χ ≤ χ'` failed.
    NotSubtype {
        /// The missing or mismatched register.
        reg: Reg,
        /// Human-readable detail.
        detail: String,
    },
    /// A stack index referred to a hidden or out-of-range slot.
    BadStackIndex {
        /// The requested slot.
        idx: usize,
        /// Number of visible slots.
        visible: usize,
    },
    /// A tuple field index is out of range.
    BadFieldIndex {
        /// The requested field.
        idx: usize,
        /// Tuple width.
        width: usize,
    },
    /// The instruction would overwrite or hide the return marker.
    ClobbersMarker(&'static str),
    /// The return marker would escape into the heap or be duplicated.
    MarkerEscape(&'static str),
    /// The current return marker does not satisfy the rule's requirement.
    BadMarker {
        /// The marker found.
        found: RetMarker,
        /// What the rule needs.
        need: &'static str,
    },
    /// `ret-type`/`ret-addr-type` is undefined for this marker.
    NoRetType(RetMarker),
    /// A jump target's preconditions don't match the current state.
    JumpMismatch {
        /// Which precondition failed.
        what: &'static str,
        /// What the target expects.
        expected: String,
        /// What the jump site has.
        found: String,
    },
    /// An instantiation list does not match the binder list.
    BadInstantiation(String),
    /// A multi-language instruction (`import`/`protect`) or expression
    /// reached the pure-T checker/machine.
    MultiLanguage(&'static str),
    /// A component-local heap binding is not `box` (Fig 2 requires
    /// `ν = box` for all local bindings).
    LocalHeapNotBox(Label),
    /// Heap tuple types could not be inferred (cyclic or ill-formed
    /// fragment).
    HeapInference(String),
    /// A duplicate binder in `∆`.
    DuplicateTyVar(TyVar),
    /// The stack is too short for the requested operation.
    StackShape {
        /// What the rule needed.
        need: String,
        /// The actual stack typing.
        found: StackTy,
    },
    /// Anything else, with a description.
    Other(String),
    /// An error wrapped with a location breadcrumb.
    Context {
        /// Where (block label, instruction index, ...).
        at: String,
        /// The underlying error.
        cause: Box<TypeError>,
    },
}

impl TypeError {
    /// Wraps the error with a breadcrumb describing where it happened.
    pub fn at(self, loc: impl fmt::Display) -> TypeError {
        TypeError::Context {
            at: loc.to_string(),
            cause: Box::new(self),
        }
    }

    /// Convenience constructor for [`TypeError::Mismatch`].
    pub fn mismatch(
        what: &'static str,
        expected: &impl fmt::Display,
        found: &impl fmt::Display,
    ) -> TypeError {
        TypeError::Mismatch {
            expected: expected.to_string(),
            found: found.to_string(),
            what,
        }
    }

    /// Convenience constructor for [`TypeError::WrongForm`].
    pub fn wrong_form(expected: &'static str, found: &impl fmt::Display) -> TypeError {
        TypeError::WrongForm {
            expected,
            found: found.to_string(),
        }
    }

    /// The innermost (unwrapped) error.
    pub fn root(&self) -> &TypeError {
        match self {
            TypeError::Context { cause, .. } => cause.root(),
            other => other,
        }
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundTyVar(v) => write!(f, "unbound type variable {v}"),
            TypeError::UnboundReg(r) => write!(f, "register {r} has no type in chi"),
            TypeError::UnboundLabel(l) => write!(f, "label {l} is not in the heap typing"),
            TypeError::UnboundVar(x) => write!(f, "unbound variable {x}"),
            TypeError::Mismatch {
                expected,
                found,
                what,
            } => {
                write!(f, "{what}: expected {expected}, found {found}")
            }
            TypeError::WrongForm { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            TypeError::NotSubtype { reg, detail } => {
                write!(f, "register file subtyping failed at {reg}: {detail}")
            }
            TypeError::BadStackIndex { idx, visible } => {
                write!(
                    f,
                    "stack slot {idx} is not visible ({visible} visible slots)"
                )
            }
            TypeError::BadFieldIndex { idx, width } => {
                write!(f, "field {idx} out of range for a {width}-tuple")
            }
            TypeError::ClobbersMarker(what) => {
                write!(f, "{what} would clobber the return marker")
            }
            TypeError::MarkerEscape(what) => {
                write!(f, "{what} would duplicate the return continuation")
            }
            TypeError::BadMarker { found, need } => {
                write!(f, "return marker {found} unusable here: need {need}")
            }
            TypeError::NoRetType(q) => {
                write!(f, "ret-type is undefined for marker {q}")
            }
            TypeError::JumpMismatch {
                what,
                expected,
                found,
            } => {
                write!(
                    f,
                    "jump precondition {what}: target expects {expected}, have {found}"
                )
            }
            TypeError::BadInstantiation(s) => write!(f, "bad type instantiation: {s}"),
            TypeError::MultiLanguage(what) => {
                write!(f, "multi-language form `{what}` not allowed in pure T")
            }
            TypeError::LocalHeapNotBox(l) => {
                write!(f, "component-local heap value {l} must be box (Fig 2)")
            }
            TypeError::HeapInference(s) => write!(f, "cannot infer heap typing: {s}"),
            TypeError::DuplicateTyVar(v) => write!(f, "duplicate type variable {v}"),
            TypeError::StackShape { need, found } => {
                write!(f, "stack shape mismatch: need {need}, stack is {found}")
            }
            TypeError::Other(s) => f.write_str(s),
            TypeError::Context { at, cause } => write!(f, "{at}: {cause}"),
        }
    }
}

impl std::error::Error for TypeError {}

/// An error raised by the T abstract machine.
#[derive(Clone, Debug, PartialEq)]
pub enum RuntimeError {
    /// A register was read before being written.
    UnboundReg(Reg),
    /// A label is not in the heap.
    UnboundLabel(Label),
    /// An operand that had to be an integer was not.
    NotInt(String),
    /// An operand that had to be a tuple pointer was not.
    NotTuple(String),
    /// A jump target did not resolve to a code block.
    NotCode(String),
    /// `unpack` of a non-package value.
    NotPack(String),
    /// `unfold` of a non-folded value.
    NotFold(String),
    /// A stack operation underflowed.
    StackUnderflow {
        /// How many slots were needed.
        need: usize,
        /// How many were present.
        have: usize,
    },
    /// A stack slot index was out of range.
    BadStackIndex(usize),
    /// A tuple field index was out of range.
    BadFieldIndex(usize),
    /// A store to an immutable (`box`) tuple.
    ImmutableStore(Label),
    /// Jump to a block whose `∆` was not fully instantiated.
    BadInstantiation {
        /// Binders expected.
        expected: usize,
        /// Instantiations provided.
        provided: usize,
    },
    /// A multi-language form reached the pure-T machine.
    MultiLanguage(&'static str),
    /// The dynamic type-safety guard detected a violated precondition
    /// (never happens for well-typed programs — see E11 in DESIGN.md).
    GuardViolation(String),
    /// Anything else.
    Stuck(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UnboundReg(r) => write!(f, "register {r} is uninitialized"),
            RuntimeError::UnboundLabel(l) => write!(f, "label {l} not in heap"),
            RuntimeError::NotInt(s) => write!(f, "expected an integer, got {s}"),
            RuntimeError::NotTuple(s) => write!(f, "expected a tuple pointer, got {s}"),
            RuntimeError::NotCode(s) => write!(f, "expected a code pointer, got {s}"),
            RuntimeError::NotPack(s) => write!(f, "expected a pack, got {s}"),
            RuntimeError::NotFold(s) => write!(f, "expected a fold, got {s}"),
            RuntimeError::StackUnderflow { need, have } => {
                write!(f, "stack underflow: need {need} slots, have {have}")
            }
            RuntimeError::BadStackIndex(i) => write!(f, "stack slot {i} out of range"),
            RuntimeError::BadFieldIndex(i) => write!(f, "tuple field {i} out of range"),
            RuntimeError::ImmutableStore(l) => {
                write!(f, "store to immutable tuple at {l}")
            }
            RuntimeError::BadInstantiation { expected, provided } => {
                write!(f, "block expects {expected} instantiations, got {provided}")
            }
            RuntimeError::MultiLanguage(what) => {
                write!(
                    f,
                    "multi-language form `{what}` not supported by the pure T machine"
                )
            }
            RuntimeError::GuardViolation(s) => write!(f, "type-safety guard: {s}"),
            RuntimeError::Stuck(s) => write!(f, "machine stuck: {s}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Result alias for checker functions.
pub type TResult<T> = Result<T, TypeError>;

/// Result alias for machine functions.
pub type RResult<T> = Result<T, RuntimeError>;
