//! The paper's pure-T example programs, reconstructed as syntax trees.
//!
//! [`fig3_call_to_call`] is Figure 3 ("T Example: Call to Call"), whose
//! control flow is Figure 4. The §3 inline examples live in the test
//! suite (`sec3_*` tests).

use funtal_syntax::build::*;
use funtal_syntax::{RegFileTy, RetMarker, StackTy, TComp, TTy, TyVarDecl};

/// The continuation type `box ∀[].{r1: int; ζ} ε` that threads through
/// Figure 3, parameterized by the names of `ζ` and `ε`.
pub fn fig3_cont_ty(z: &str, e: &str) -> TTy {
    code_ty(vec![], chi([(r1(), int())]), zvar(z), q_var(e))
}

/// Figure 3 of the paper: the component `f` that calls `ℓ1`, which in
/// turn calls `ℓ2`; `ℓ2` jumps to `ℓ2aux`, which returns through
/// `ℓ2ret` and finally `ℓ1ret` halts with `2`.
pub fn fig3_call_to_call() -> TComp {
    // H(ℓ1ret) = code[]{r1: int; •} end{int;•}. halt int, • {r1}
    let l1ret = code_block(
        vec![],
        chi([(r1(), int())]),
        nil(),
        q_end(int(), nil()),
        seq(vec![], halt(int(), nil(), r1())),
    );

    // H(ℓ1) = code[ζ,ε]{ra: box∀[].{r1:int;ζ}ε; ζ} ra.
    //   salloc 1; sst 0, ra; mv ra, ℓ2ret[ζ,ε];
    //   call ℓ2 {box∀[].{r1:int;ζ}ε :: ζ, 0}
    let l1 = code_block(
        vec![d_stk("z"), d_ret("e")],
        chi([(ra(), fig3_cont_ty("z", "e"))]),
        zvar("z"),
        q_reg(ra()),
        seq(
            vec![
                salloc(1),
                sst(0, ra()),
                mv(
                    ra(),
                    loc_i("l2ret", vec![i_stk(zvar("z")), i_ret(q_var("e"))]),
                ),
            ],
            call(
                loc("l2"),
                stack(vec![fig3_cont_ty("z", "e")], zvar("z")),
                q_i(0),
            ),
        ),
    );

    // H(ℓ2) = code[ζ,ε]{ra: box∀[].{r1:int;ζ}ε; ζ} ra.
    //   mv r1, 1; jmp ℓ2aux[ζ, ε]
    let l2 = code_block(
        vec![d_stk("z"), d_ret("e")],
        chi([(ra(), fig3_cont_ty("z", "e"))]),
        zvar("z"),
        q_reg(ra()),
        seq(
            vec![mv(r1(), int_v(1))],
            jmp(loc_i("l2aux", vec![i_stk(zvar("z")), i_ret(q_var("e"))])),
        ),
    );

    // H(ℓ2aux) = code[ζ,ε]{r1: int, ra: box∀[].{r1:int;ζ}ε; ζ} ra.
    //   mul r1, r1, 2; ret ra {r1}
    let l2aux = code_block(
        vec![d_stk("z"), d_ret("e")],
        chi([(r1(), int()), (ra(), fig3_cont_ty("z", "e"))]),
        zvar("z"),
        q_reg(ra()),
        seq(vec![mul(r1(), r1(), int_v(2))], ret(ra(), r1())),
    );

    // H(ℓ2ret) = code[ζ,ε]{r1: int; box∀[].{r1:int;ζ}ε :: ζ} 0.
    //   sld ra, 0; sfree 1; ret ra {r1}
    let l2ret = code_block(
        vec![d_stk("z"), d_ret("e")],
        chi([(r1(), int())]),
        stack(vec![fig3_cont_ty("z", "e")], zvar("z")),
        q_i(0),
        seq(vec![sld(ra(), 0), sfree(1)], ret(ra(), r1())),
    );

    // f = (mv ra, ℓ1ret; call ℓ1 {•, end{int;•}}, H)
    tcomp(
        seq(
            vec![mv(ra(), loc("l1ret"))],
            call(loc("l1"), nil(), q_end(int(), nil())),
        ),
        vec![
            ("l1", l1),
            ("l1ret", l1ret),
            ("l2", l2),
            ("l2aux", l2aux),
            ("l2ret", l2ret),
        ],
    )
}

/// The starting context for checking a whole program that halts with an
/// `int` on an empty stack.
pub fn whole_program_marker() -> RetMarker {
    q_end(int(), nil())
}

/// The empty register file (whole programs start with no register
/// assumptions).
pub fn empty_chi() -> RegFileTy {
    RegFileTy::new()
}

/// The empty stack type.
pub fn empty_stack() -> StackTy {
    nil()
}

/// Declarations `[ζ: stk, ε: ret]` used by most figure blocks.
pub fn standard_delta(z: &str, e: &str) -> Vec<TyVarDecl> {
    vec![d_stk(z), d_ret(e)]
}
