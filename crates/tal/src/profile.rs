//! Span-attributed fuel profiling.
//!
//! The [`Profiler`] is a [`Tracer`] that charges every fuel tick to the
//! source span responsible for it, using the charging invariant shared
//! by all three execution tiers:
//!
//! > every fuel tick is accompanied by **exactly one** charging event —
//! > `Instr`, `FStep`, `FBeta`, `Jmp`, `Call`, `Ret`, `Halt`,
//! > `BoundaryEnter`, `BoundaryExit`, or `ImportExit`.
//!
//! (`BnzTaken` rides along with the `Instr` of the same tick, and
//! `ImportEnter` is never emitted; neither charges.)  Because the three
//! tiers are proven to emit byte-identical event streams, the profile
//! they induce is byte-identical too — the certification test in the
//! driver pins this.
//!
//! Attribution is structural: the profiler maintains a frame stack that
//! mirrors the machine's language nesting (F under `import`, T under a
//! boundary), names each frame after the label or pseudo-label it is
//! executing (`<main>`, `<import>`, `<boundary>`, or a heap label with
//! its freshening suffix stripped), and resolves names to source spans
//! through a [`SpanTable`] recorded at parse time.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use funtal_syntax::span::{base_label, Span, SpanTable};

use crate::trace::{CountTracer, Event, Tracer};

/// Pseudo-frame for the top-level F expression.
const MAIN: &str = "<main>";
/// Pseudo-frame for F code running under an `import`.
const IMPORT: &str = "<import>";
/// Pseudo-frame for T code before its first labelled block.
const BOUNDARY: &str = "<boundary>";

/// An [`Event`] paired with the source span it was charged to.
///
/// This is the profiler's unit of attribution: the flat event stream
/// the machines emit, lifted into span-carrying form.
#[derive(Clone, Debug, PartialEq)]
pub struct AttributedEvent {
    /// Source region the event's fuel tick was charged to.
    pub span: Span,
    /// The underlying machine event.
    pub event: Event,
}

impl fmt::Display for AttributedEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.event)
    }
}

/// Which language the profiled program starts in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RootLang {
    /// An F expression (the usual `funtal run` entry point).
    F,
    /// A bare T component (`run_program`).
    T,
}

/// One row of the rendered profile.
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileEntry {
    /// Frame name: a heap label base or one of the `<...>` pseudo-names.
    pub name: String,
    /// Resolved source region (synthetic for generated code).
    pub span: Span,
    /// Fuel ticks charged to this name.
    pub ticks: u64,
}

/// A frame of the attribution stack.
#[derive(Clone, Debug)]
enum FrameKind {
    /// F code: either `<main>` or `<import>`.
    F { name: &'static str },
    /// T code: the base name of the block being executed, or `None`
    /// before the first labelled block (shown as `<boundary>`).
    T { current: Option<String> },
}

impl FrameKind {
    fn name(&self) -> &str {
        match self {
            FrameKind::F { name } => name,
            FrameKind::T { current } => current.as_deref().unwrap_or(BOUNDARY),
        }
    }
}

/// A [`Tracer`] that buckets fuel ticks by source span.
///
/// Also embeds a [`CountTracer`] (`counts`) so a profiled run yields
/// the ordinary step-count report in the same pass.
#[derive(Clone, Debug)]
pub struct Profiler {
    table: Arc<SpanTable>,
    stack: Vec<FrameKind>,
    buckets: BTreeMap<String, u64>,
    folded: BTreeMap<String, u64>,
    total: u64,
    /// Ordinary event counts, updated alongside attribution.
    pub counts: CountTracer,
    /// `τFT` boundary entries observed (including empty-heap entries
    /// detected structurally rather than via an event).
    pub boundary_enters: u64,
    /// `τFT` boundary exits observed.
    pub boundary_exits: u64,
    /// `import` entries observed (structurally: first F step under T).
    pub import_enters: u64,
    /// `import` exits observed.
    pub import_exits: u64,
    keep_events: bool,
    events: Vec<AttributedEvent>,
}

impl Profiler {
    /// A profiler over `table`, rooted in `root`.
    pub fn new(table: Arc<SpanTable>, root: RootLang) -> Self {
        let root_frame = match root {
            RootLang::F => FrameKind::F { name: MAIN },
            RootLang::T => FrameKind::T { current: None },
        };
        Profiler {
            table,
            stack: vec![root_frame],
            buckets: BTreeMap::new(),
            folded: BTreeMap::new(),
            total: 0,
            counts: CountTracer::new(),
            boundary_enters: 0,
            boundary_exits: 0,
            import_enters: 0,
            import_exits: 0,
            keep_events: false,
            events: Vec::new(),
        }
    }

    /// Same, but additionally records every charging event in
    /// span-attributed form (see [`AttributedEvent`]).
    pub fn with_events(table: Arc<SpanTable>, root: RootLang) -> Self {
        let mut p = Self::new(table, root);
        p.keep_events = true;
        p
    }

    /// Total fuel ticks attributed. Equals the minimal sufficient fuel
    /// of the run (certified by the driver's differential tests).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The recorded span-attributed charging events, in order
    /// (empty unless built via [`Profiler::with_events`]).
    pub fn attributed_events(&self) -> &[AttributedEvent] {
        &self.events
    }

    /// Resolves a frame name to a source span.
    fn span_of(&self, name: &str) -> Span {
        match name {
            MAIN => self.table.root,
            IMPORT | BOUNDARY => Span::SYNTH,
            label => self.table.resolve(label),
        }
    }

    /// Rows sorted hottest-first (ticks descending, then name).
    pub fn entries(&self) -> Vec<ProfileEntry> {
        let mut rows: Vec<ProfileEntry> = self
            .buckets
            .iter()
            .map(|(name, &ticks)| ProfileEntry {
                name: name.clone(),
                span: self.span_of(name),
                ticks,
            })
            .collect();
        rows.sort_by(|a, b| b.ticks.cmp(&a.ticks).then_with(|| a.name.cmp(&b.name)));
        rows
    }

    /// Flamegraph-style folded stack lines (`path count`), sorted.
    ///
    /// Paths are frame names joined with `;`, outermost first.
    pub fn folded_lines(&self) -> Vec<String> {
        self.folded
            .iter()
            .map(|(path, ticks)| format!("{path} {ticks}"))
            .collect()
    }

    /// The folded lines as one newline-terminated string.
    pub fn render_folded(&self) -> String {
        let mut out = String::new();
        for line in self.folded_lines() {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// The human-readable hot-span table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("profile: {} ticks total\n", self.total));
        out.push_str("  ticks      %  where         source\n");
        for row in self.entries() {
            // Integer-only percentage ("xx.x") keeps rendering
            // byte-identical across platforms.
            let permille = (row.ticks * 1000).checked_div(self.total).unwrap_or(0);
            out.push_str(&format!(
                "  {:>5}  {:>3}.{}  {:<12}  {}\n",
                row.ticks,
                permille / 10,
                permille % 10,
                row.name,
                row.span,
            ));
        }
        out.push_str(&format!(
            "  crossings: {} boundary in, {} out; {} import in, {} out\n",
            self.boundary_enters, self.boundary_exits, self.import_enters, self.import_exits,
        ));
        out
    }

    /// Charges one tick to the frame on top of the stack.
    fn charge(&mut self, event: &Event) {
        let name = self
            .stack
            .last()
            .expect("non-empty stack")
            .name()
            .to_owned();
        self.total += 1;
        *self.buckets.entry(name.clone()).or_insert(0) += 1;
        let path: Vec<&str> = self.stack.iter().map(FrameKind::name).collect();
        *self.folded.entry(path.join(";")).or_insert(0) += 1;
        if self.keep_events {
            let span = self.span_of(&name);
            self.events.push(AttributedEvent {
                span,
                event: event.clone(),
            });
        }
    }

    /// If F is on top, enter T (an empty-heap boundary emits no event,
    /// so the first T tick is where the crossing becomes visible).
    fn ensure_t(&mut self) {
        if matches!(self.stack.last(), Some(FrameKind::F { .. })) {
            self.stack.push(FrameKind::T { current: None });
            self.boundary_enters += 1;
        }
    }

    /// If T is on top, enter F (an `import` emits no entry event, so
    /// the first F tick is where the crossing becomes visible).
    fn ensure_f(&mut self) {
        if matches!(self.stack.last(), Some(FrameKind::T { .. })) {
            self.stack.push(FrameKind::F { name: IMPORT });
            self.import_enters += 1;
        }
    }

    /// Points the top T frame at the block `to`, stripping the
    /// machine's freshening suffix so all instances of a block
    /// aggregate into one bucket.
    fn set_current(&mut self, to: &funtal_syntax::Label) {
        if let Some(FrameKind::T { current }) = self.stack.last_mut() {
            *current = Some(base_label(to.as_str()).to_owned());
        }
    }
}

impl Tracer for Profiler {
    fn event(&mut self, e: &Event) {
        self.counts.event(e);
        match e {
            Event::Instr | Event::Halt { .. } => {
                self.ensure_t();
                self.charge(e);
            }
            Event::Jmp { to } | Event::Call { to } | Event::Ret { to, .. } => {
                self.ensure_t();
                self.charge(e);
                let to = to.clone();
                self.set_current(&to);
            }
            Event::BnzTaken { to } => {
                // Rides on the `Instr` of the same tick: redirect, but
                // do not charge twice.
                self.ensure_t();
                let to = to.clone();
                self.set_current(&to);
            }
            Event::FStep | Event::FBeta => {
                self.ensure_f();
                self.charge(e);
            }
            Event::BoundaryEnter { .. } => {
                // The heap-merge step of a non-empty boundary: one tick,
                // charged to the new (not-yet-labelled) T frame.
                self.ensure_f();
                self.stack.push(FrameKind::T { current: None });
                self.boundary_enters += 1;
                self.charge(e);
            }
            Event::BoundaryExit { .. } => {
                if matches!(self.stack.last(), Some(FrameKind::T { .. })) {
                    self.charge(e);
                    self.stack.pop();
                    self.boundary_exits += 1;
                } else {
                    // Empty-heap boundary over an immediate halt value:
                    // no T tick ever surfaced, so the frame is
                    // transient — enter and exit within this one tick.
                    self.stack.push(FrameKind::T { current: None });
                    self.boundary_enters += 1;
                    self.charge(e);
                    self.stack.pop();
                    self.boundary_exits += 1;
                }
            }
            Event::ImportExit { .. } => {
                if matches!(self.stack.last(), Some(FrameKind::F { name }) if *name == IMPORT) {
                    self.charge(e);
                    self.stack.pop();
                    self.import_exits += 1;
                } else {
                    // Import of an expression that was already a value:
                    // zero F steps, so the frame is transient.
                    self.stack.push(FrameKind::F { name: IMPORT });
                    self.import_enters += 1;
                    self.charge(e);
                    self.stack.pop();
                    self.import_exits += 1;
                }
            }
            Event::ImportEnter => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funtal_syntax::{FTy, Label, Reg};

    fn table() -> Arc<SpanTable> {
        let mut t = SpanTable::new();
        t.root = Span::new(1, 1, 3, 10);
        t.record("fact", Span::new(2, 3, 2, 40));
        Arc::new(t)
    }

    #[test]
    fn attribution_sums_to_total() {
        let mut p = Profiler::new(table(), RootLang::F);
        p.event(&Event::FStep);
        p.event(&Event::BoundaryEnter { ty: FTy::Int });
        p.event(&Event::Jmp {
            to: Label::new("fact$2"),
        });
        p.event(&Event::Instr);
        p.event(&Event::Instr);
        p.event(&Event::Halt { reg: Reg::R1 });
        assert_eq!(p.total(), 6);
        let sum: u64 = p.entries().iter().map(|r| r.ticks).sum();
        assert_eq!(sum, p.total());
        let folded_sum: u64 = p
            .folded_lines()
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(folded_sum, p.total());
    }

    #[test]
    fn freshened_labels_fold_into_one_bucket() {
        let mut p = Profiler::new(table(), RootLang::F);
        p.event(&Event::BoundaryEnter { ty: FTy::Int });
        p.event(&Event::Jmp {
            to: Label::new("fact$7"),
        });
        p.event(&Event::Jmp {
            to: Label::new("fact$9"),
        });
        let rows = p.entries();
        let fact: Vec<_> = rows.iter().filter(|r| r.name == "fact").collect();
        assert_eq!(fact.len(), 1);
        assert_eq!(fact[0].span, Span::new(2, 3, 2, 40));
    }

    #[test]
    fn empty_heap_boundary_is_detected_structurally() {
        let mut p = Profiler::new(table(), RootLang::F);
        // No BoundaryEnter event (empty heap): the first Instr implies
        // the crossing.
        p.event(&Event::Instr);
        p.event(&Event::Halt { reg: Reg::R1 });
        assert_eq!(p.boundary_enters, 1);
        assert_eq!(p.total(), 2);
        assert_eq!(p.entries()[0].name, BOUNDARY);
    }

    #[test]
    fn transient_import_of_a_value_balances_counters() {
        let mut p = Profiler::new(table(), RootLang::F);
        p.event(&Event::BoundaryEnter { ty: FTy::Int });
        p.event(&Event::ImportExit { rd: Reg::R3 });
        assert_eq!(p.import_enters, 1);
        assert_eq!(p.import_exits, 1);
        assert_eq!(p.total(), 2);
    }

    #[test]
    fn attributed_events_carry_spans() {
        let mut p = Profiler::with_events(table(), RootLang::F);
        p.event(&Event::FStep);
        p.event(&Event::BoundaryEnter { ty: FTy::Int });
        let evs = p.attributed_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].span, Span::new(1, 1, 3, 10));
        assert_eq!(evs[0].event, Event::FStep);
        assert_eq!(evs[0].to_string(), "1:1-3:10: fstep");
    }

    #[test]
    fn table_rendering_is_deterministic_and_integer_math() {
        let mut p = Profiler::new(table(), RootLang::F);
        p.event(&Event::FStep);
        p.event(&Event::FStep);
        p.event(&Event::FStep);
        let t = p.render_table();
        assert!(t.starts_with("profile: 3 ticks total\n"));
        assert!(t.contains("100.0"));
        assert!(t.contains("<main>"));
    }
}
