//! **T**: the compositional stack-based typed assembly language of
//! *"FunTAL: Reasonably Mixing a Functional Language with Assembly"*
//! (PLDI 2017), §3.
//!
//! T extends STAL (Morrisett et al.) with the paper's central novelty:
//! **return markers** `q` on code types, which record where a block's
//! return continuation lives (a register, a stack slot, an abstract
//! variable `ε`, or the halting marker `end{τ;σ}`) and therefore give
//! multi-block assembly *components* a function-like semantic interface.
//!
//! This crate provides:
//!
//! - [`check`] — the full Fig 2 type system: instruction judgments,
//!   `jmp`/`call`/`ret`/`halt` rules, `ret-type`/`ret-addr-type`, and
//!   component typing `Ψ;∆;χ;σ;q ⊢ (I,H) : τ;σ'`;
//! - [`machine`] — the small-step abstract machine over memories
//!   `M = (H, R, S)`, with heap-fragment merging and fuel-bounded
//!   execution;
//! - [`wf`], [`value_ty`] — well-formedness and value-typing judgments,
//!   shared with the FT checker in the `funtal` crate;
//! - [`trace`] — control-flow events used to regenerate Fig 4/Fig 12;
//! - [`figures`] — Figure 3 reconstructed as a syntax tree.
//!
//! # Example
//!
//! Type-check and run Figure 3 (which computes `1 * 2` through two
//! `call`s, a `jmp` and two `ret`s):
//!
//! ```
//! use funtal_tal::figures::fig3_call_to_call;
//! use funtal_tal::check::check_program;
//! use funtal_tal::machine::{run_program, Outcome};
//! use funtal_tal::trace::NullTracer;
//! use funtal_syntax::{TTy, WordVal};
//!
//! let prog = fig3_call_to_call();
//! check_program(&prog, &TTy::Int)?;
//! let out = run_program(&prog, 1_000, &mut NullTracer)?;
//! assert_eq!(out, Outcome::Halted(WordVal::Int(2)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod error;
pub mod figures;
pub mod machine;
pub mod profile;
pub mod trace;
pub mod value_ty;
pub mod wf;

pub use check::{check_component, check_program, check_seq, ret_addr_type, ret_type, TCtx};
pub use error::{RResult, RuntimeError, TResult, TypeError};
pub use machine::{run_component, run_program, Memory, Outcome, Stack};
pub use profile::{AttributedEvent, ProfileEntry, Profiler, RootLang};
pub use trace::{CountTracer, Event, NullTracer, Tracer, VecTracer};
pub use wf::Delta;
