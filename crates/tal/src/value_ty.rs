//! Typing of word values (`Ψ; ∆ ⊢ w : τ`) and small values
//! (`Ψ; ∆; χ ⊢ u : τ`), plus register-file subtyping `∆ ⊢ χ ≤ χ'`.

use funtal_syntax::alpha::{alpha_eq_code_ty, alpha_eq_tty};
use funtal_syntax::subst::Subst;
use funtal_syntax::{CodeTy, HeapTy, HeapTyping, Inst, RegFileTy, SmallVal, TTy, WordVal};

use crate::error::{TResult, TypeError};
use crate::wf::{apply_insts, wf_tty, Delta};

/// Computes the type of a word value.
pub fn type_of_word(psi: &HeapTyping, delta: &Delta, w: &WordVal) -> TResult<TTy> {
    match w {
        WordVal::Unit => Ok(TTy::Unit),
        WordVal::Int(_) => Ok(TTy::Int),
        WordVal::Loc(l) => psi
            .loc_ty(l)
            .ok_or_else(|| TypeError::UnboundLabel(l.clone())),
        WordVal::Pack { hidden, body, ann } => {
            check_pack(psi, delta, hidden, ann, &type_of_word(psi, delta, body)?)
        }
        WordVal::Fold { ann, body } => check_fold(delta, ann, &type_of_word(psi, delta, body)?),
        WordVal::Inst { body, args } => {
            instantiate_code(delta, &type_of_word(psi, delta, body)?, args)
        }
    }
}

/// Computes the type of a small value (an instruction operand).
pub fn type_of_small(
    psi: &HeapTyping,
    delta: &Delta,
    chi: &RegFileTy,
    u: &SmallVal,
) -> TResult<TTy> {
    match u {
        SmallVal::Reg(r) => chi.get(*r).cloned().ok_or(TypeError::UnboundReg(*r)),
        SmallVal::Word(w) => type_of_word(psi, delta, w),
        SmallVal::Pack { hidden, body, ann } => check_pack(
            psi,
            delta,
            hidden,
            ann,
            &type_of_small(psi, delta, chi, body)?,
        ),
        SmallVal::Fold { ann, body } => {
            check_fold(delta, ann, &type_of_small(psi, delta, chi, body)?)
        }
        SmallVal::Inst { body, args } => {
            instantiate_code(delta, &type_of_small(psi, delta, chi, body)?, args)
        }
    }
}

/// Shared rule for `pack⟨τ,·⟩ as ∃α.τ'`: the body must have type
/// `τ'[τ/α]`, and the annotation must be a well-formed existential.
fn check_pack(
    _psi: &HeapTyping,
    delta: &Delta,
    hidden: &TTy,
    ann: &TTy,
    body_ty: &TTy,
) -> TResult<TTy> {
    wf_tty(delta, hidden)?;
    wf_tty(delta, ann)?;
    let TTy::Exists(a, inner) = ann else {
        return Err(TypeError::wrong_form("an existential annotation", ann));
    };
    let expected = Subst::one(a.clone(), Inst::Ty(hidden.clone())).tty(inner);
    if alpha_eq_tty(&expected, body_ty) {
        Ok(ann.clone())
    } else {
        Err(TypeError::mismatch("pack body", &expected, body_ty))
    }
}

/// Shared rule for `fold_{µα.τ} ·`: the body must have type
/// `τ[µα.τ/α]`.
fn check_fold(delta: &Delta, ann: &TTy, body_ty: &TTy) -> TResult<TTy> {
    wf_tty(delta, ann)?;
    let TTy::Rec(a, inner) = ann else {
        return Err(TypeError::wrong_form("a recursive-type annotation", ann));
    };
    let expected = Subst::one(a.clone(), Inst::Ty(ann.clone())).tty(inner);
    if alpha_eq_tty(&expected, body_ty) {
        Ok(ann.clone())
    } else {
        Err(TypeError::mismatch("fold body", &expected, body_ty))
    }
}

/// Shared rule for `·[ω̄]`: the body must be a code pointer with at least
/// `|ω̄|` binders of matching kinds; the result is the partially
/// instantiated code type.
fn instantiate_code(delta: &Delta, body_ty: &TTy, args: &[Inst]) -> TResult<TTy> {
    let Some(code) = body_ty.as_code() else {
        return Err(TypeError::wrong_form(
            "a code pointer to instantiate",
            body_ty,
        ));
    };
    let (subst, rest) = apply_insts(delta, &code.delta, args)?;
    let inner = CodeTy {
        delta: rest.to_vec(),
        chi: code.chi.clone(),
        sigma: code.sigma.clone(),
        q: code.q.clone(),
    };
    // `apply_insts` already removed the instantiated binders; the
    // substitution respects the remaining ones via `Subst::code_ty`'s
    // binder handling, but we apply it to the *open* remainder directly.
    let applied = CodeTy {
        delta: inner.delta.clone(),
        chi: subst.chi(&inner.chi),
        sigma: subst.stack(&inner.sigma),
        q: subst.ret(&inner.q),
    };
    Ok(TTy::Boxed(Box::new(HeapTy::Code(applied))))
}

/// Register-file subtyping `∆ ⊢ χ ≤ χ'`: every register required by
/// `χ'` must be present in `χ` at an alpha-equal type ("we can have more
/// registers with values in them, but the types of registers that occur
/// in χ' must match", §3).
pub fn chi_subtype(chi: &RegFileTy, upper: &RegFileTy) -> TResult<()> {
    for (r, want) in upper.iter() {
        match chi.get(r) {
            None => {
                return Err(TypeError::NotSubtype {
                    reg: r,
                    detail: format!("required at type {want} but absent"),
                })
            }
            Some(have) => {
                if !alpha_eq_tty(have, want) {
                    return Err(TypeError::NotSubtype {
                        reg: r,
                        detail: format!("required at type {want}, present at {have}"),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Alpha-equality helper for code types exposed to the checker.
pub fn code_ty_eq(a: &CodeTy, b: &CodeTy) -> bool {
    alpha_eq_code_ty(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use funtal_syntax::build::*;
    use funtal_syntax::ty::Mutability;
    use funtal_syntax::Label;

    fn psi_with_tuple() -> HeapTyping {
        let mut psi = HeapTyping::new();
        psi.insert(
            Label::new("t"),
            Mutability::Boxed,
            HeapTy::Tuple(vec![int(), unit()]),
        );
        psi
    }

    #[test]
    fn literals() {
        let psi = HeapTyping::new();
        let d = Delta::new();
        assert_eq!(
            type_of_word(&psi, &d, &funtal_syntax::WordVal::Int(3)),
            Ok(int())
        );
        assert_eq!(
            type_of_word(&psi, &d, &funtal_syntax::WordVal::Unit),
            Ok(unit())
        );
    }

    #[test]
    fn locations() {
        let psi = psi_with_tuple();
        let d = Delta::new();
        let t = type_of_word(&psi, &d, &funtal_syntax::WordVal::Loc(Label::new("t"))).unwrap();
        assert_eq!(t, box_tuple(vec![int(), unit()]));
        assert!(type_of_word(&psi, &d, &funtal_syntax::WordVal::Loc(Label::new("x"))).is_err());
    }

    #[test]
    fn packs() {
        let psi = HeapTyping::new();
        let d = Delta::new();
        // pack <int, 3> as exists a. a : ok
        let w = funtal_syntax::WordVal::Pack {
            hidden: int(),
            body: Box::new(funtal_syntax::WordVal::Int(3)),
            ann: exists("a", tvar("a")),
        };
        assert_eq!(type_of_word(&psi, &d, &w), Ok(exists("a", tvar("a"))));
        // pack <unit, 3> as exists a. a : body type mismatch
        let bad = funtal_syntax::WordVal::Pack {
            hidden: unit(),
            body: Box::new(funtal_syntax::WordVal::Int(3)),
            ann: exists("a", tvar("a")),
        };
        assert!(type_of_word(&psi, &d, &bad).is_err());
    }

    #[test]
    fn folds() {
        let psi = HeapTyping::new();
        let d = Delta::new();
        // mu a. unit is inhabited by fold (fold ... ()) one level: body must
        // have type unit[mu/a] = unit.
        let w = funtal_syntax::WordVal::Fold {
            ann: mu("a", unit()),
            body: Box::new(funtal_syntax::WordVal::Unit),
        };
        assert_eq!(type_of_word(&psi, &d, &w), Ok(mu("a", unit())));
    }

    #[test]
    fn instantiation_peels_binders() {
        let mut psi = HeapTyping::new();
        let code = CodeTy {
            delta: vec![d_stk("z"), d_ret("e")],
            chi: chi([]),
            sigma: zvar("z"),
            q: q_var("e"),
        };
        psi.insert(Label::new("l"), Mutability::Boxed, HeapTy::Code(code));
        let d = Delta::new();
        let u = loc_i("l", vec![i_stk(nil()), i_ret(q_end(int(), nil()))]);
        let t = type_of_small(&psi, &d, &chi([]), &u).unwrap();
        let c = t.as_code().unwrap();
        assert!(c.delta.is_empty());
        assert_eq!(c.sigma, nil());
        assert_eq!(c.q, q_end(int(), nil()));
    }

    #[test]
    fn subtyping_width() {
        let small = chi([(r1(), int())]);
        let big = chi([(r1(), int()), (r2(), unit())]);
        assert!(chi_subtype(&big, &small).is_ok());
        assert!(chi_subtype(&small, &big).is_err());
        let wrong = chi([(r1(), unit())]);
        assert!(chi_subtype(&wrong, &small).is_err());
    }

    #[test]
    fn registers_require_chi() {
        let psi = HeapTyping::new();
        let d = Delta::new();
        let c = chi([(r1(), int())]);
        assert_eq!(type_of_small(&psi, &d, &c, &reg(r1())), Ok(int()));
        assert!(type_of_small(&psi, &d, &c, &reg(r2())).is_err());
    }
}
