//! Umbrella crate for the FunTAL reproduction: re-exports every
//! sub-crate and hosts the cross-crate integration tests (`tests/`) and
//! runnable examples (`examples/`).
//!
//! See the individual crates for the system itself:
//!
//! - [`funtal_syntax`] — shared abstract syntax;
//! - [`funtal_tal`] — the typed assembly language T (§3);
//! - [`funtal_fun`] — the functional language F (§4.1);
//! - [`funtal`] — the FT multi-language (§4–§5);
//! - [`funtal_parser`] — concrete syntax;
//! - [`funtal_equiv`] — the bounded logical relation (§5);
//! - [`funtal_compile`] — the MiniF→T compiler and JIT runtime (§6);
//! - [`funtal_driver`] — the unified pipeline and the `funtal` CLI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use funtal;
pub use funtal_compile;
pub use funtal_driver;
pub use funtal_equiv;
pub use funtal_fun;
pub use funtal_parser;
pub use funtal_syntax;
pub use funtal_tal;
