//! An offline, API-compatible subset of the `proptest` crate.
//!
//! The workspace's property tests were written against the real
//! `proptest`; the build image has no network access, so this shim
//! implements exactly the surface those tests use (see
//! `vendor/README.md`). Differences from the real crate:
//!
//! - generation is a deterministic SplitMix64 stream seeded from the
//!   test name (reproducible runs, no `PROPTEST_*` env handling);
//! - there is **no shrinking** — a failing case reports the case number
//!   and panics with the assertion message;
//! - regex string strategies support only single character-class
//!   patterns like `"[a-c]"` (all this workspace uses).

#![warn(missing_docs)]

use std::fmt;
use std::ops::Range;
use std::rc::Rc;

pub mod collection;

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`; `hi` must be greater than `lo`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generation strategy for values of type [`Strategy::Value`].
///
/// This is the object-safe core of the real crate's trait: combinators
/// are provided methods gated on `Self: Sized`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for
    /// the previous depth and returns the strategy for one level deeper.
    /// The `_desired_size` / `_expected_branch_size` tuning knobs of the
    /// real crate are accepted and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            // Mix in the leaf at every level so sizes stay bounded.
            cur = Union::new(vec![leaf.clone(), deeper.clone(), deeper]).boxed();
        }
        cur
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among type-erased alternatives (what [`prop_oneof!`]
/// expands to).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

impl Strategy for Range<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        let span = (self.end - self.start) as u64;
        self.start + rng.below(span) as i64
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl Strategy for Range<u32> {
    type Value = u32;
    fn generate(&self, rng: &mut TestRng) -> u32 {
        self.start + rng.below((self.end - self.start) as u64) as u32
    }
}

/// String strategies from simple regex patterns. Only a single
/// character class (`"[a-c]"`) or a literal string is supported.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let bytes = self.as_bytes();
        if bytes.len() == 5 && bytes[0] == b'[' && bytes[2] == b'-' && bytes[4] == b']' {
            let (lo, hi) = (bytes[1], bytes[3]);
            assert!(lo <= hi, "bad char class {self}");
            let c = lo + rng.below((hi - lo + 1) as u64) as u8;
            (c as char).to_string()
        } else {
            (*self).to_string()
        }
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Per-test configuration (only the case count is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (no shrinking — carries the message only).
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the current case with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }

    /// Alias of [`TestCaseError::fail`] matching the real crate's
    /// `Reject` constructor closely enough for our uses.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Drives the cases of one property test.
#[derive(Clone, Debug)]
pub struct TestRunner {
    rng: TestRng,
    cases: u32,
}

impl TestRunner {
    /// Creates a runner seeded deterministically from the test name.
    pub fn new(config: &ProptestConfig, test_name: &str) -> TestRunner {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner {
            rng: TestRng::new(seed),
            cases: config.cases,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// Generates one value from `strategy`.
    pub fn generate<S: Strategy>(&mut self, strategy: &S) -> S::Value {
        strategy.generate(&mut self.rng)
    }
}

/// Declares property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0i64..10, y in 0i64..10) { prop_assert!(x + y >= x); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(&config, stringify!($name));
                for case in 0..runner.cases() {
                    $(let $arg = runner.generate(&($strat));)+
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!("proptest `{}` case #{}: {}", stringify!($name), case, e);
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Property-level assertion; fails the case (not the process) so the
/// harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Property-level equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b,
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), a, b,
            )));
        }
    }};
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestCaseError, TestRunner,
    };

    /// Mirror of the real crate's `prop` module path (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}
