//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::{Strategy, TestRng};

/// Generates vectors whose lengths fall in `range`.
pub fn vec<S: Strategy>(element: S, range: Range<usize>) -> VecStrategy<S> {
    assert!(range.end > range.start, "empty length range");
    VecStrategy { element, range }
}

/// The result of [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    range: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.range.end - self.range.start) as u64;
        let len = self.range.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
