//! An offline, API-compatible subset of the `criterion` benchmark
//! harness.
//!
//! The workspace's benches were written against the real `criterion`;
//! the build image has no network access, so this shim implements the
//! surface they use: `criterion_group!`/`criterion_main!`,
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], and [`black_box`].
//!
//! Measurement is a fixed-budget wall-clock loop (a short warm-up, then
//! timed batches until the budget elapses) reporting mean and median
//! nanoseconds per iteration. Set `BENCH_OUTPUT=/path/to.json` to also
//! write a machine-readable summary — `BENCH_baseline.json` at the repo
//! root is produced this way. Statistical analysis, plots, and HTML
//! reports of the real crate are out of scope.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`].
pub use std::hint::black_box;

/// Identifies one benchmark: a function name plus an optional
/// parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id from a bare parameter (unused name).
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            function: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId {
            function: name,
            parameter: None,
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) if self.function.is_empty() => write!(f, "{p}"),
            Some(p) => write!(f, "{}/{}", self.function, p),
            None => write!(f, "{}", self.function),
        }
    }
}

/// One measured benchmark, as recorded for the final summary.
#[derive(Clone, Debug)]
pub struct Sample {
    /// `group/function/parameter` path.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Median nanoseconds per iteration (over timed batches).
    pub median_ns: f64,
    /// Total iterations measured.
    pub iters: u64,
}

/// Timing loop handed to the closure of a benchmark.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    batch_means: Vec<f64>,
    iters: u64,
}

impl Bencher {
    /// Times `f`, running it repeatedly for the measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also estimates a batch size targeting ~1ms batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = self.warmup.as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((0.001 / per_iter).ceil() as u64).clamp(1, 1_000_000);

        let start = Instant::now();
        while start.elapsed() < self.measure {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t0.elapsed().as_nanos() as f64;
            self.batch_means.push(elapsed / batch as f64);
            self.iters += batch;
        }
    }

    fn sample(&mut self, id: String) -> Sample {
        let mut means = std::mem::take(&mut self.batch_means);
        if means.is_empty() {
            return Sample {
                id,
                mean_ns: 0.0,
                median_ns: 0.0,
                iters: 0,
            };
        }
        means.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let mean = means.iter().sum::<f64>() / means.len() as f64;
        let median = means[means.len() / 2];
        Sample {
            id,
            mean_ns: mean,
            median_ns: median,
            iters: self.iters,
        }
    }
}

/// Entry point collecting benchmark results (a tiny subset of the real
/// `Criterion` struct).
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
    samples: Vec<Sample>,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = |var: &str, default_ms: u64| {
            std::env::var(var)
                .ok()
                .and_then(|v| v.parse().ok())
                .map(Duration::from_millis)
                .unwrap_or(Duration::from_millis(default_ms))
        };
        Criterion {
            warmup: ms("BENCH_WARMUP_MS", 20),
            measure: ms("BENCH_MEASURE_MS", 120),
            samples: Vec::new(),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.record(String::new(), id.into(), f);
        self
    }

    fn record(&mut self, group: String, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            batch_means: Vec::new(),
            iters: 0,
        };
        f(&mut b);
        let path = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        let s = b.sample(path);
        println!(
            "bench {:<44} mean {:>12.1} ns/iter  median {:>12.1} ns/iter  ({} iters)",
            s.id, s.mean_ns, s.median_ns, s.iters
        );
        self.samples.push(s);
    }

    /// Prints the final table and writes the JSON summary if
    /// `BENCH_OUTPUT` is set. Called by [`criterion_main!`].
    ///
    /// With `BENCH_APPEND=1` the rows are *appended* to the file, one
    /// `{"id": …}` object per line, so several bench binaries can
    /// accumulate a single combined snapshot (the `bench_check` gate
    /// parses snapshots line-wise and accepts both layouts).
    pub fn final_summary(&self) {
        println!("\n{} benchmarks measured", self.samples.len());
        let Ok(path) = std::env::var("BENCH_OUTPUT") else {
            return;
        };
        let append = std::env::var("BENCH_APPEND").is_ok_and(|v| v == "1");
        let row = |s: &Sample| {
            format!(
                "{{\"id\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"iters\": {}}}",
                s.id, s.mean_ns, s.median_ns, s.iters
            )
        };
        let result = if append {
            use std::io::Write;
            std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| {
                    for s in &self.samples {
                        writeln!(f, "{}", row(s))?;
                    }
                    Ok(())
                })
        } else {
            let mut out = String::from("{\n  \"benchmarks\": [\n");
            for (i, s) in self.samples.iter().enumerate() {
                let comma = if i + 1 == self.samples.len() { "" } else { "," };
                out.push_str(&format!("    {}{comma}\n", row(s)));
            }
            out.push_str("  ]\n}\n");
            std::fs::write(&path, out)
        };
        match result {
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
            Ok(()) => println!("wrote {path}"),
        }
    }
}

/// A named group of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let group = self.name.clone();
        self.criterion.record(group, id.into(), f);
        self
    }

    /// Benchmarks `f` with an input value (passed by reference).
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let group = self.name.clone();
        self.criterion.record(group, id.into(), |b| f(b, input));
        self
    }

    /// Ends the group (no-op beyond dropping the borrow).
    pub fn finish(self) {}
}

/// Declares a group function calling each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `fn main` running each group then printing the summary.
/// Harness arguments passed by `cargo bench` (e.g. `--bench`) are
/// accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}
